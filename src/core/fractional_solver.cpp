#include "core/fractional_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mecsc::core {

namespace {

/// Re-pricing rounds of the facility-location amortization (see solve).
constexpr std::size_t kRounds = 3;
/// Tolerance of the full-arc-set reduced-cost optimality certificate
/// (per-unit costs are O(1) after the /res normalisation).
constexpr double kDualTol = 1e-7;

}  // namespace

void FractionalSolver::import_warm_state(const FractionalWarmState& state) const {
  const std::size_t ns = problem_->num_stations();
  bool ok = state.station_price.empty() || state.station_price.size() == ns;
  for (const auto& arcs : state.warm_arcs) {
    if (!ok) break;
    for (std::uint32_t i : arcs) {
      if (i >= ns) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    // Stale snapshot (wrong station universe): cold start. Silently
    // accepting it would index arcs past the working-set mask.
    MECSC_COUNT("frac.warm_state_rejected", 1.0);
    s_.warm.clear();
    s_.station_price.clear();
    return;
  }
  s_.warm = state.warm_arcs;
  s_.station_price = state.station_price;
}

FractionalSolution FractionalSolver::solve(const std::vector<double>& demands,
                                           const std::vector<double>& theta) const {
  return solve_impl(demands, theta, nullptr);
}

FractionalSolution FractionalSolver::solve_degraded(
    const std::vector<double>& demands, const std::vector<double>& theta,
    SolveReport* report) const {
  SolveReport local;
  return solve_impl(demands, theta, report != nullptr ? report : &local);
}

FractionalSolution FractionalSolver::solve_impl(const std::vector<double>& demands,
                                                const std::vector<double>& theta,
                                                SolveReport* report) const {
  MECSC_SPAN("frac.solve");
  MECSC_COUNT("frac.solves", 1.0);
  const CachingProblem& p = *problem_;
  const std::size_t nr = p.num_requests();
  const std::size_t ns = p.num_stations();
  const std::size_t nk = p.num_services();
  MECSC_CHECK_MSG(demands.size() == nr, "demand vector size mismatch");
  MECSC_CHECK_MSG(theta.size() == ns, "theta vector size mismatch");

  Scratch& s = s_;

  // Expected resource demand per request and per service (initial
  // amortization base).
  s.res.resize(nr);
  s.svc.resize(nr);
  s.home.resize(nr);
  s.service_demand.assign(nk, 0.0);
  double total_flow = 0.0;
  for (std::size_t l = 0; l < nr; ++l) {
    const auto& req = p.requests()[l];
    double res = p.resource_demand_mhz(demands[l]);
    s.res[l] = res;
    s.svc[l] = static_cast<std::uint32_t>(req.service_id);
    s.home[l] = static_cast<std::uint32_t>(req.home_station);
    s.service_demand[req.service_id] += res;
    total_flow += res;
  }

  // Round-invariant part of the (l, i) serving cost; the per-round
  // amortized instantiation price is added on top.
  s.base_cost.resize(nr * ns);
  for (std::size_t l = 0; l < nr; ++l) {
    const double dl = demands[l];
    const double txl = p.tx_unit_ms(l);
    double* row = &s.base_cost[l * ns];
    for (std::size_t i = 0; i < ns; ++i) {
      row[i] = dl * (theta[i] + txl) + p.access_latency_ms(l, i);
    }
  }

  return flow_solve(nr, total_flow, static_cast<double>(nr), report);
}

FractionalSolution FractionalSolver::solve_classes(const DemandClassing& classing,
                                                   const std::vector<double>& theta,
                                                   SolveReport* report) const {
  MECSC_SPAN("frac.solve_classes");
  MECSC_COUNT("frac.class_solves", 1.0);
  const CachingProblem& p = *problem_;
  const std::size_t nc = classing.num_classes();
  const std::size_t ns = p.num_stations();
  const std::size_t nk = p.num_services();
  MECSC_CHECK_MSG(classing.num_requests() == p.num_requests(),
                  "classing was built for a different problem");
  MECSC_CHECK_MSG(theta.size() == ns, "theta vector size mismatch");

  Scratch& s = s_;

  // One column per demand class; its resource demand is the members'
  // summed demand, so station capacity sees exactly the per-request load.
  s.res.resize(nc);
  s.svc.resize(nc);
  s.home.resize(nc);
  s.service_demand.assign(nk, 0.0);
  double total_flow = 0.0;
  const auto& classes = classing.classes();
  for (std::size_t c = 0; c < nc; ++c) {
    const DemandClass& cls = classes[c];
    double res = p.resource_demand_mhz(cls.rho_sum);
    s.res[c] = res;
    s.svc[c] = cls.service;
    s.home[c] = cls.home_station;
    s.service_demand[cls.service] += res;
    total_flow += res;
  }

  // Exact member-summed cost coefficients: Σ_l [ρ_l·(θ_i + tx_l) +
  // access_li] over the class = rho_sum·θ_i + tx_rho_sum + count·access
  // (members share the home station, hence the access latency, to every
  // candidate station). Aggregation therefore loses nothing in the cost
  // model — only the within-class freedom to split members differently.
  s.base_cost.resize(nc * ns);
  const bool inc_access = p.options().include_access_latency;
  for (std::size_t c = 0; c < nc; ++c) {
    const DemandClass& cls = classes[c];
    const double cnt = static_cast<double>(cls.count);
    double* row = &s.base_cost[c * ns];
    for (std::size_t i = 0; i < ns; ++i) {
      const double access =
          inc_access ? p.topology().path_latency_ms(cls.home_station, i) : 0.0;
      row[i] = cls.rho_sum * theta[i] + cls.tx_rho_sum + cnt * access;
    }
  }

  return flow_solve(nc, total_flow,
                    static_cast<double>(classing.num_requests()), report);
}

FractionalSolution FractionalSolver::flow_solve(std::size_t n, double total_flow,
                                                double objective_divisor,
                                                SolveReport* report) const {
  const CachingProblem& p = *problem_;
  const std::size_t ns = p.num_stations();
  const std::size_t nk = p.num_services();
  Scratch& s = s_;

  // Network-access latency of column e at station i (identical to
  // access_latency_ms on the request path; the class path shares one
  // home station across members).
  const bool inc_access = p.options().include_access_latency;
  auto col_access = [&](std::size_t e, std::size_t i) {
    return inc_access ? p.topology().path_latency_ms(s.home[e], i) : 0.0;
  };

  // inst_base[k][i]: demand base used to amortize d_ins[i][k].
  s.inst_base.resize(nk * ns);
  for (std::size_t k = 0; k < nk; ++k) {
    std::fill_n(&s.inst_base[k * ns], ns, s.service_demand[k]);
  }

  // Per-unit cost of the (e, i) arc under the current amortization base.
  auto arc_cost = [&](std::size_t e, std::size_t i) {
    std::size_t k = s.svc[e];
    double res = s.res[e];
    double base = std::max(s.inst_base[k * ns + i], res);
    double amortized = p.instantiation_delay_ms(i, k) * res / base;
    return (s.base_cost[e * ns + i] + amortized) / res;
  };

  // --- Working-set construction -------------------------------------
  // Each column keeps arcs to its `width` most attractive stations plus
  // whatever stations served it on the previous solve; the optimality
  // certificate below adds anything this misses. Attractiveness is
  // cost MINUS the station's previous dual price: at a transportation
  // optimum the basic arcs of column e minimise c_ei - price_i, so
  // ranking by that key (with last solve's prices as the congestion
  // estimate) lands the initial set on the likely optimal support
  // instead of piling every column onto the same few cheap-but-
  // saturated stations.
  s.work.resize(n);
  s.work_edge.resize(n);
  s.warm.resize(n);
  s.in_work.assign(n * ns, 0);
  s.station_price.resize(ns, 0.0);

  auto grow_column = [&](std::size_t e, std::size_t target) {
    auto& w = s.work[e];
    if (w.size() >= target) return;
    s.cand.clear();
    const char* mask = &s.in_work[e * ns];
    for (std::size_t i = 0; i < ns; ++i) {
      if (!mask[i]) {
        s.cand.emplace_back(arc_cost(e, i) - s.station_price[i],
                            static_cast<std::uint32_t>(i));
      }
    }
    std::size_t need = std::min(target, ns) - w.size();
    need = std::min(need, s.cand.size());
    std::partial_sort(s.cand.begin(), s.cand.begin() + need, s.cand.end());
    for (std::size_t j = 0; j < need; ++j) {
      std::uint32_t i = s.cand[j].second;
      w.push_back(i);
      s.in_work[e * ns + i] = 1;
    }
  };

  std::size_t width = std::min(ns, std::max<std::size_t>(12, ns / 8));
  for (std::size_t e = 0; e < n; ++e) {
    s.work[e].clear();
    if (s.res[e] <= 0.0) continue;
    // Warm arcs first (they carried flow last slot, so they are likely
    // basic again), then fill to `width` with the cheapest stations.
    for (std::uint32_t i : s.warm[e]) {
      if (!s.in_work[e * ns + i]) {
        s.work[e].push_back(i);
        s.in_work[e * ns + i] = 1;
      }
    }
    grow_column(e, width);
  }

  auto expand_width = [&](std::size_t target) {
    for (std::size_t e = 0; e < n; ++e) {
      if (s.res[e] > 0.0) grow_column(e, target);
    }
  };

  // Cheap necessary condition: the union of working stations must have
  // enough capacity for the aggregate demand, else a shortfall solve is
  // guaranteed.
  auto union_capacity = [&]() {
    double cap = 0.0;
    for (std::size_t i = 0; i < ns; ++i) {
      for (std::size_t e = 0; e < n; ++e) {
        if (s.in_work[e * ns + i]) {
          cap += p.station_capacity_mhz(i);
          break;
        }
      }
    }
    return cap;
  };
  while (width < ns && union_capacity() < 1.05 * total_flow) {
    width = std::min(ns, width * 2);
    expand_width(width);
    MECSC_COUNT("frac.width_expansions", 1.0);
  }

  // --- Flow network --------------------------------------------------
  // Node layout: 0 = source, 1..n = columns, n+1..n+ns = stations,
  // n+ns+1 = sink.
  const std::size_t src = 0;
  const std::size_t sink = n + ns + 1;
  if (s.mcf.num_nodes() != n + ns + 2) s.mcf = flow::MinCostFlow(n + ns + 2);

  s.sink_edge.resize(ns);
  auto rebuild_graph = [&]() {
    s.mcf.clear_edges();
    for (std::size_t e = 0; e < n; ++e) {
      if (s.res[e] <= 0.0) continue;  // handled after the flow solve
      s.mcf.add_edge(src, 1 + e, s.res[e], 0.0);
      auto& w = s.work[e];
      auto& we = s.work_edge[e];
      we.resize(w.size());
      for (std::size_t j = 0; j < w.size(); ++j) {
        we[j] = s.mcf.add_edge(1 + e, 1 + n + w[j], s.res[e], arc_cost(e, w[j]));
      }
    }
    for (std::size_t i = 0; i < ns; ++i) {
      s.sink_edge[i] =
          s.mcf.add_edge(1 + n + i, sink, p.station_capacity_mhz(i), 0.0);
    }
  };

  double best_objective = std::numeric_limits<double>::infinity();
  bool have_best = false;
  // Degraded mode: set once the flow solver accepts a shortfall (only
  // possible when `report` is non-null).
  bool shortfall = false;

  // Successive approximation of the facility-location term: solve the
  // transportation LP with instantiation delay amortized per unit of
  // flow, then re-price each (service, station) instance by the demand
  // it actually attracted (a thin instance gets an honest, high per-unit
  // opening price next round), and keep the best solution under the true
  // Eq. 3 objective. Three rounds close most of the gap to the exact LP
  // (see tests/test_core.cpp and bench_lp_vs_flow).
  bool graph_dirty = true;
  for (std::size_t round = 0; round < kRounds; ++round) {
    if (!graph_dirty) {
      // Same arc set, new amortization: update costs in place and rewind
      // the residual capacities — no allocation, no graph rebuild.
      for (std::size_t e = 0; e < n; ++e) {
        if (s.res[e] <= 0.0) continue;
        auto& w = s.work[e];
        for (std::size_t j = 0; j < w.size(); ++j) {
          s.mcf.set_cost(s.work_edge[e][j], arc_cost(e, w[j]));
        }
      }
      s.mcf.reset();
    }

    // Solve-and-certify: route on the working set, then verify the
    // result against every pruned-out arc with the final duals and add
    // what the pruning missed. Intermediate rounds skip the certificate:
    // their only job is to compute the next amortization base (a
    // heuristic re-pricing), so the working-set optimum is good enough
    // there; the last round — whose arc set contains everything earlier
    // rounds routed on — is certified, so the solution the caller
    // receives is exactly the full-network optimum for its cost vector.
    const bool certify = round + 1 == kRounds;
    for (;;) {
      if (graph_dirty) {
        rebuild_graph();
        graph_dirty = false;
      }
      if (certify) MECSC_COUNT("mcf.pruning_rounds", 1.0);
      flow::FlowResult fr = s.mcf.solve(src, sink, total_flow);
      if (fr.flow < total_flow - 1e-6 * std::max(1.0, total_flow)) {
        if (width < ns) {
          width = std::min(ns, width * 2);
          expand_width(width);
          MECSC_COUNT("frac.width_expansions", 1.0);
          graph_dirty = true;
          continue;
        }
        if (report == nullptr) {
          throw common::Infeasible(
              "flow solver could not route all demand: capacity short");
        }
        // Degraded mode: keep what was routed; the leftovers are placed
        // greedily during extraction below.
        report->degraded = true;
        report->unrouted_mhz = total_flow - fr.flow;
        MECSC_COUNT("fault.degraded_solves", 1.0);
        shortfall = true;
      }
      // Certificate duals (also persisted as the congestion estimate for
      // the next solve's working-set ranking). A station with no inbound
      // flow is often unreachable in the residual network, where the
      // truncated-Dijkstra update inflates its raw potential by
      // dist(sink) per pass; its only binding dual constraint is the
      // residual station→sink arc (price >= pot(sink)), so pot(sink) is
      // the tightest feasible price and avoids a storm of spurious
      // violations.
      const double psink = s.mcf.potential(sink);
      for (std::size_t i = 0; i < ns; ++i) {
        s.station_price[i] = s.mcf.edge_flow(s.sink_edge[i]) > 1e-12
                                 ? s.mcf.potential(1 + n + i)
                                 : psink;
      }
      if (shortfall || !certify) break;
      // Scan pruned arcs for negative reduced cost. Only the two most
      // violated arcs per column are added per iteration: the optimal
      // support is sparse (a transportation basis has ~2 arcs per
      // column), so adding every violated arc would balloon the working
      // set and make each subsequent Dijkstra pass pay for arcs that will
      // never carry flow.
      s.violations.clear();
      for (std::size_t e = 0; e < n; ++e) {
        if (s.res[e] <= 0.0) continue;
        const double pe = s.mcf.potential(1 + e);
        const char* mask = &s.in_work[e * ns];
        double rc1 = -kDualTol, rc2 = -kDualTol;  // two smallest reduced costs
        std::uint32_t i1 = ns, i2 = ns;
        for (std::size_t i = 0; i < ns; ++i) {
          if (mask[i]) continue;
          double rc = arc_cost(e, i) + pe - s.station_price[i];
          if (rc < rc2) {
            if (rc < rc1) {
              rc2 = rc1;
              i2 = i1;
              rc1 = rc;
              i1 = static_cast<std::uint32_t>(i);
            } else {
              rc2 = rc;
              i2 = static_cast<std::uint32_t>(i);
            }
          }
        }
        if (i1 < ns) {
          s.violations.emplace_back(static_cast<std::uint32_t>(e), i1);
        }
        if (i2 < ns) {
          s.violations.emplace_back(static_cast<std::uint32_t>(e), i2);
        }
      }
      if (s.violations.empty()) break;
      MECSC_COUNT("frac.violated_arcs_added",
                  static_cast<double>(s.violations.size()));
      for (auto [e, i] : s.violations) {
        s.work[e].push_back(i);
        s.in_work[e * ns + i] = 1;
      }
      graph_dirty = true;
    }

    // Extract x / y and re-price from realised per-instance demand.
    s.x.assign(n * ns, 0.0);
    s.y.assign(nk * ns, 0.0);
    s.attracted.assign(nk * ns, 0.0);
    if (shortfall) {
      // Track per-station load so the greedy leftover placement can find
      // residual capacity.
      s.station_load.resize(ns);
      for (std::size_t i = 0; i < ns; ++i) {
        s.station_load[i] = s.mcf.edge_flow(s.sink_edge[i]);
      }
    }
    double xcost = 0.0;  // sum over x of the true (non-amortized) cost
    for (std::size_t e = 0; e < n; ++e) {
      std::size_t k = s.svc[e];
      if (s.res[e] <= 0.0) {
        // Zero-demand column: pin to its cheapest *up* station (no
        // capacity use, no instantiation pressure). Down stations are
        // skipped so shed/idle requests never ride out a slot on an
        // outaged host.
        std::size_t best_i = 0;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < ns; ++i) {
          if (!p.station_up(i)) continue;
          double c = col_access(e, i);
          if (c < best_cost) {
            best_cost = c;
            best_i = i;
          }
        }
        s.x[e * ns + best_i] = 1.0;
        s.y[k * ns + best_i] = std::max(s.y[k * ns + best_i], 1.0);
        xcost += s.base_cost[e * ns + best_i];
        continue;
      }
      auto& w = s.work[e];
      double placed = 0.0;
      for (std::size_t j = 0; j < w.size(); ++j) {
        double xei =
            std::clamp(s.mcf.edge_flow(s.work_edge[e][j]) / s.res[e], 0.0, 1.0);
        if (xei <= 0.0) continue;
        std::size_t i = w[j];
        s.x[e * ns + i] = xei;
        s.y[k * ns + i] = std::max(s.y[k * ns + i], xei);
        s.attracted[k * ns + i] += xei * s.res[e];
        xcost += xei * s.base_cost[e * ns + i];
        placed += xei;
      }
      if (shortfall && placed < 1.0 - 1e-9) {
        // Greedy repair of the unrouted fraction: cheapest up station
        // with room for it, else the up station with the most residual
        // capacity (capacity violated, but Σx = 1 is preserved and the
        // overload is scored honestly by the true-cost objective).
        double leftover = 1.0 - placed;
        double extra = leftover * s.res[e];
        std::size_t best_i = ns;
        double best_cost = std::numeric_limits<double>::infinity();
        std::size_t spill_i = ns;
        double spill_room = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < ns; ++i) {
          double cap = p.station_capacity_mhz(i);
          if (cap <= 0.0) continue;  // down station: never a repair host
          double room = cap - s.station_load[i];
          if (room > spill_room) {
            spill_room = room;
            spill_i = i;
          }
          if (room + 1e-9 < extra) continue;
          double c = arc_cost(e, i);
          if (c < best_cost) {
            best_cost = c;
            best_i = i;
          }
        }
        if (best_i == ns) best_i = spill_i;
        if (best_i == ns) best_i = 0;  // whole network down: arbitrary host
        s.station_load[best_i] += extra;
        double xei = s.x[e * ns + best_i] + leftover;
        s.x[e * ns + best_i] = xei;
        s.y[k * ns + best_i] = std::max(s.y[k * ns + best_i], xei);
        s.attracted[k * ns + best_i] += extra;
        xcost += leftover * s.base_cost[e * ns + best_i];
      }
    }
    double ycost = 0.0;
    for (std::size_t k = 0; k < nk; ++k) {
      for (std::size_t i = 0; i < ns; ++i) {
        double yki = s.y[k * ns + i];
        if (yki > 0.0) ycost += yki * p.instantiation_delay_ms(i, k);
      }
    }
    double objective = (xcost + ycost) / objective_divisor;

    bool improved =
        !have_best || objective < best_objective - 1e-9 * (1.0 + objective);
    if (improved) {
      best_objective = objective;
      s.x_best = s.x;
      s.y_best = s.y;
      have_best = true;
    } else if (round > 0) {
      break;  // re-pricing converged (or started oscillating): stop early
    }
    if (shortfall) break;  // capacity is round-invariant: re-pricing can't help
    MECSC_COUNT("frac.repricing_rounds", 1.0);
    std::swap(s.inst_base, s.attracted);
  }

  // Remember which stations carried each column's flow — next solve's
  // warm arcs (demands and θ drift slowly between slots, so the same
  // arcs tend to be basic again).
  for (std::size_t e = 0; e < n; ++e) {
    s.warm[e].clear();
    const double* row = &s.x_best[e * ns];
    for (std::size_t i = 0; i < ns; ++i) {
      if (row[i] > 1e-12) s.warm[e].push_back(static_cast<std::uint32_t>(i));
    }
  }

  if (obs::enabled()) {
    std::size_t working_arcs = 0;
    for (std::size_t e = 0; e < n; ++e) working_arcs += s.work[e].size();
    obs::current()
        .histogram("frac.working_arcs")
        .observe(static_cast<double>(working_arcs));
  }

  FractionalSolution out;
  out.objective = best_objective;
  out.x.assign(n, std::vector<double>(ns));
  for (std::size_t e = 0; e < n; ++e) {
    std::copy_n(&s.x_best[e * ns], ns, out.x[e].begin());
  }
  out.y.assign(nk, std::vector<double>(ns));
  for (std::size_t k = 0; k < nk; ++k) {
    std::copy_n(&s.y_best[k * ns], ns, out.y[k].begin());
  }
  return out;
}

double FractionalSolver::objective(const FractionalSolution& sol,
                                   const std::vector<double>& demands,
                                   const std::vector<double>& theta) const {
  const CachingProblem& p = *problem_;
  const std::size_t nr = p.num_requests();
  const std::size_t ns = p.num_stations();
  MECSC_CHECK(sol.x.size() == nr && demands.size() == nr && theta.size() == ns);
  double total = 0.0;
  for (std::size_t l = 0; l < nr; ++l) {
    for (std::size_t i = 0; i < ns; ++i) {
      double xli = sol.x[l][i];
      if (xli <= 0.0) continue;
      total += xli * (demands[l] * (theta[i] + p.tx_unit_ms(l)) +
                      p.access_latency_ms(l, i));
    }
  }
  for (std::size_t k = 0; k < p.num_services(); ++k) {
    for (std::size_t i = 0; i < ns; ++i) {
      double yki = sol.y[k][i];
      if (yki <= 0.0) continue;
      total += yki * p.instantiation_delay_ms(i, k);
    }
  }
  return total / static_cast<double>(nr);
}

}  // namespace mecsc::core
