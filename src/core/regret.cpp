#include "core/regret.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsc::core {

namespace theory {

double lemma1_sigma(std::size_t num_requests, double d_max, double d_min,
                    double delta_ins, double gamma) {
  MECSC_CHECK_MSG(num_requests > 0, "need at least one request");
  MECSC_CHECK_MSG(d_max >= d_min && d_min >= 0.0, "need d_max >= d_min >= 0");
  MECSC_CHECK_MSG(delta_ins >= 0.0, "negative instantiation spread");
  MECSC_CHECK_MSG(gamma > 0.0 && gamma <= 1.0, "gamma out of (0,1]");
  double r = static_cast<double>(num_requests);
  double case1 = r * (d_max - gamma * d_min + delta_ins);
  double case2 = r * gamma * (1.0 - std::exp(-2.0 * gamma * r * r)) + delta_ins;
  return std::max(case1, case2);
}

double theorem1_bound(double sigma, std::size_t horizon, double c) {
  MECSC_CHECK_MSG(sigma >= 0.0, "negative sigma");
  MECSC_CHECK_MSG(c > 0.0 && c < 1.0, "Theorem 1 requires 0 < c < 1");
  if (horizon < 2) return 0.0;
  double arg = (static_cast<double>(horizon) - 1.0) / (std::exp(1.0 / c) + 1.0);
  if (arg <= 1.0) return 0.0;
  return sigma * std::log(arg);
}

}  // namespace theory

RegretTracker::RegretTracker(const CachingProblem& problem)
    : problem_(&problem), oracle_(problem) {}

void RegretTracker::record(double realized_delay, const std::vector<double>& demands,
                           const std::vector<double>& true_unit_delays) {
  MECSC_CHECK_MSG(realized_delay >= 0.0, "negative realised delay");
  // Degraded-mode oracle: under fault injection a slot's demand can
  // exceed the surviving capacity, and a benchmark tracker must not
  // throw out of the run — the oracle then scores the best-possible
  // degraded placement, which is the fair comparison point.
  FractionalSolution opt = oracle_.solve_degraded(demands, true_unit_delays);
  double regret = std::max(0.0, realized_delay - opt.objective);
  per_slot_optimum_.push_back(opt.objective);
  per_slot_regret_.push_back(regret);
  cumulative_ += regret;
}

std::vector<double> RegretTracker::cumulative_series() const {
  std::vector<double> out(per_slot_regret_.size());
  double acc = 0.0;
  for (std::size_t t = 0; t < per_slot_regret_.size(); ++t) {
    acc += per_slot_regret_[t];
    out[t] = acc;
  }
  return out;
}

}  // namespace mecsc::core
