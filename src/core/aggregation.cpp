#include "core/aggregation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace mecsc::core {

AggregateMode resolve_aggregate_mode(AggregateMode configured) {
  if (configured != AggregateMode::kEnv) return configured;
  const char* v = std::getenv("MECSC_AGGREGATE");
  if (v == nullptr || *v == '\0') return AggregateMode::kOff;
  if (std::strcmp(v, "off") == 0) return AggregateMode::kOff;
  if (std::strcmp(v, "auto") == 0) return AggregateMode::kAuto;
  if (std::strcmp(v, "on") == 0) return AggregateMode::kOn;
  std::fprintf(stderr,
               "mecsc: ignoring MECSC_AGGREGATE=\"%s\" — expected off, auto "
               "or on\n",
               v);
  return AggregateMode::kOff;
}

namespace {

/// Packs (service, home, bucket) into one 64-bit hash key. Services and
/// stations each get 24 bits (16M — far beyond any instance here); the
/// bucket is clamped into 16 bits, which spans demand ratios of
/// bucket_ratio^±32767 — unreachable for finite demands.
std::uint64_t pack_key(std::uint32_t service, std::uint32_t home,
                       std::int32_t bucket) {
  std::int32_t clamped = std::clamp(bucket, -32767, 32767);
  auto biased = static_cast<std::uint64_t>(clamped + 32768);
  return (static_cast<std::uint64_t>(service) << 40) |
         (static_cast<std::uint64_t>(home) << 16) | biased;
}

/// Nudge applied before the floor of the generic log-ratio bucketing: a
/// demand sitting exactly on a bucket edge (ρ = ratio^j) evaluates
/// log(ρ)·inv_log_ratio to j ± a few ulp depending on the libm build and
/// whether the compiler contracts the multiply into an FMA; flooring
/// that raw value puts edge demands in bucket j on one CI leg and j−1 on
/// another, so MECSC_AGGREGATE runs were not reproducible across the
/// SIMD/scalar matrix. The nudge absorbs the ulp noise (it only moves
/// demands within a ~1e-9 relative band below an edge up into the edge's
/// bucket — far tighter than any bucket_ratio > 1 resolves anyway).
constexpr double kBucketEdgeNudge = 1e-9;

/// Platform-stable geometric bucket index of a positive demand:
/// floor(log(ρ) / log(bucket_ratio)). The default ratio 2.0 uses the
/// IEEE-754 exponent directly (std::ilogb — exact on every platform, no
/// libm in the loop); other ratios fall back to the epsilon-nudged
/// log-quotient. Pinned by AggregationTest.BucketEdgesArePlatformStable.
std::int32_t demand_bucket(double rho, double bucket_ratio,
                           double inv_log_ratio) {
  if (bucket_ratio == 2.0) return static_cast<std::int32_t>(std::ilogb(rho));
  return static_cast<std::int32_t>(
      std::floor(std::log(rho) * inv_log_ratio + kBucketEdgeNudge));
}

}  // namespace

void DemandClassing::build(const CachingProblem& problem,
                           const std::vector<double>& demands,
                           const AggregationOptions& options) {
  const std::size_t nr = problem.num_requests();
  MECSC_CHECK_MSG(demands.size() == nr, "demand vector size mismatch");
  MECSC_CHECK_MSG(options.bucket_ratio > 1.0, "bucket_ratio must be > 1");
  MECSC_CHECK_MSG(problem.num_services() < (1u << 24) &&
                      problem.num_stations() < (1u << 24),
                  "instance too large for the packed class key");

  classes_.clear();
  class_of_.resize(nr);
  index_.clear();

  const double inv_log_ratio = 1.0 / std::log(options.bucket_ratio);
  const auto& requests = problem.requests();
  for (std::size_t l = 0; l < nr; ++l) {
    const double rho = demands[l];
    std::int32_t bucket = DemandClass::kZeroDemandBucket;
    if (rho > 0.0) {
      bucket = demand_bucket(rho, options.bucket_ratio, inv_log_ratio);
    }
    const auto service = static_cast<std::uint32_t>(requests[l].service_id);
    const auto home = static_cast<std::uint32_t>(requests[l].home_station);
    const std::uint64_t key = pack_key(service, home, bucket);
    auto [it, inserted] =
        index_.try_emplace(key, static_cast<std::uint32_t>(classes_.size()));
    if (inserted) {
      DemandClass c;
      c.service = service;
      c.home_station = home;
      c.bucket = bucket;
      classes_.push_back(c);
    }
    DemandClass& c = classes_[it->second];
    c.rho_sum += rho;
    c.tx_rho_sum += rho * problem.tx_unit_ms(l);
    ++c.count;
    class_of_[l] = it->second;
  }
}

}  // namespace mecsc::core
