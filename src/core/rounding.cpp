#include "core/rounding.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.h"
#include "obs/metrics.h"

namespace mecsc::core {

std::vector<std::vector<std::size_t>> candidate_sets(const FractionalSolution& frac,
                                                     double gamma) {
  MECSC_CHECK_MSG(gamma > 0.0 && gamma <= 1.0, "gamma out of (0,1]");
  std::vector<std::vector<std::size_t>> candi(frac.x.size());
  for (std::size_t l = 0; l < frac.x.size(); ++l) {
    const auto& row = frac.x[l];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] >= gamma) candi[l].push_back(i);
    }
    if (candi[l].empty()) {
      std::size_t best =
          static_cast<std::size_t>(std::max_element(row.begin(), row.end()) - row.begin());
      candi[l].push_back(best);
    }
  }
  return candi;
}

namespace {

/// Samples a candidate station with probability proportional to x*.
/// `weights` is caller-owned scratch: this runs once per request, so a
/// per-call allocation would mean |R| mallocs on the timed slot path.
std::size_t sample_candidate(const std::vector<double>& x_row,
                             const std::vector<std::size_t>& candidates,
                             std::vector<double>& weights, common::Rng& rng) {
  weights.clear();
  weights.reserve(candidates.size());
  for (std::size_t i : candidates) weights.push_back(x_row[i]);
  return candidates[rng.weighted_index(weights)];
}

/// Cost of serving request l at station i under estimate θ — the repair
/// pass greedily minimizes this.
double serve_cost(const CachingProblem& p, std::size_t l, std::size_t i,
                  double rho, const std::vector<double>& theta) {
  return rho * theta[i] + p.access_latency_ms(l, i);
}

/// Shared rounding core. `row_of` maps each request to its row in
/// `frac.x` / the candidate sets: null means the identity (per-request
/// fractional solution); non-null means `frac` is class-level and every
/// member request rounds against its class's row (uniform de-aggregation
/// x_li := x_{class(l),i}).
Assignment round_impl(const CachingProblem& problem,
                      const FractionalSolution& frac,
                      const std::vector<std::uint32_t>* row_of,
                      const std::vector<double>& demands,
                      const std::vector<double>& theta,
                      const RoundingOptions& options, common::Rng& rng) {
  const std::size_t nr = problem.num_requests();
  const std::size_t ns = problem.num_stations();
  MECSC_CHECK(demands.size() == nr && theta.size() == ns);
  if (row_of == nullptr) {
    MECSC_CHECK(frac.x.size() == nr);
  } else {
    MECSC_CHECK(row_of->size() == nr);
  }
  MECSC_CHECK_MSG(options.epsilon >= 0.0 && options.epsilon <= 1.0,
                  "epsilon out of [0,1]");
  auto row = [&](std::size_t l) {
    return row_of == nullptr ? l : static_cast<std::size_t>((*row_of)[l]);
  };

  auto candi = candidate_sets(frac, options.gamma);
  if (obs::enabled()) {
    obs::Histogram& sizes =
        obs::current().histogram("olgd.candidate_set_size");
    for (const auto& c : candi) sizes.observe(static_cast<double>(c.size()));
  }

  Assignment a;
  a.station_of_request.assign(nr, 0);

  std::vector<bool> explored(nr, false);
  std::vector<double> sample_weights;
  bool slot_explores = options.per_slot_coin && rng.uniform() >= 1.0 - options.epsilon;
  for (std::size_t l = 0; l < nr; ++l) {
    bool explore = options.per_slot_coin
                       ? slot_explores
                       : rng.uniform() >= 1.0 - options.epsilon;
    explored[l] = explore;
    if (!explore) {
      a.station_of_request[l] =
          sample_candidate(frac.x[row(l)], candi[row(l)], sample_weights, rng);
      continue;
    }
    // Exploration: uniformly random *up* station outside the candidate
    // set (Algorithm 1 line 9; station liveness is public knowledge, so
    // no exploration budget is burned probing a known outage); when
    // every up station is a candidate, fall back to a uniform station.
    std::vector<std::size_t> others;
    others.reserve(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      if (!problem.station_up(i)) continue;
      const auto& cl = candi[row(l)];
      if (std::find(cl.begin(), cl.end(), i) == cl.end()) {
        others.push_back(i);
      }
    }
    a.station_of_request[l] =
        others.empty() ? rng.index(ns) : others[rng.index(others.size())];
  }
  if (obs::enabled()) {
    double explores = 0.0;
    for (bool e : explored) explores += e ? 1.0 : 0.0;
    obs::Registry& reg = obs::current();
    reg.counter("olgd.explore_requests").add(explores);
    reg.counter("olgd.exploit_requests")
        .add(static_cast<double>(nr) - explores);
  }

  // Capacity repair: rounding (and exploration) can overload a station
  // even when the fractional solution is feasible. Move the overloaded
  // stations' requests — least-committed (smallest x*) first — to the
  // cheapest station with room.
  std::vector<double> load(ns, 0.0);
  std::vector<double> cap(ns);
  for (std::size_t i = 0; i < ns; ++i) cap[i] = problem.station_capacity_mhz(i);
  for (std::size_t l = 0; l < nr; ++l) {
    load[a.station_of_request[l]] += problem.resource_demand_mhz(demands[l]);
  }
  // Requests at each overloaded station, collected in ONE pass over all
  // requests (a per-station rescan is O(overloaded · |R|) — measurably
  // superlinear at the 1M-request scale). Safe to precollect: repair
  // only ever moves a request to a station with room, and a station that
  // starts overloaded never has room, so no list gains or loses members
  // before its station is processed.
  double spilled = 0.0;
  std::vector<std::vector<std::size_t>> members_of_overloaded(ns);
  bool any_overloaded = false;
  for (std::size_t i = 0; i < ns; ++i) any_overloaded |= load[i] > cap[i];
  if (any_overloaded) {
    for (std::size_t l = 0; l < nr; ++l) {
      const std::size_t i = a.station_of_request[l];
      if (load[i] > cap[i]) members_of_overloaded[i].push_back(l);
    }
  }
  for (std::size_t i = 0; i < ns; ++i) {
    if (load[i] <= cap[i]) continue;
    std::vector<std::size_t>& here = members_of_overloaded[i];
    std::sort(here.begin(), here.end(), [&](std::size_t a_l, std::size_t b_l) {
      return frac.x[row(a_l)][i] < frac.x[row(b_l)][i];
    });
    for (std::size_t l : here) {
      if (load[i] <= cap[i]) break;
      double res = problem.resource_demand_mhz(demands[l]);
      // Cheapest alternative with room; prefer candidates.
      const auto& cl = candi[row(l)];
      std::size_t best = ns;
      double best_cost = std::numeric_limits<double>::infinity();
      bool best_is_candidate = false;
      for (std::size_t j = 0; j < ns; ++j) {
        if (j == i || cap[j] <= 0.0 || load[j] + res > cap[j]) continue;
        bool is_candi = std::find(cl.begin(), cl.end(), j) != cl.end();
        double c = serve_cost(problem, l, j, demands[l], theta);
        if ((is_candi && !best_is_candidate) ||
            (is_candi == best_is_candidate && c < best_cost)) {
          best = j;
          best_cost = c;
          best_is_candidate = is_candi;
        }
      }
      if (best == ns) continue;  // nowhere to move this one; try others
      a.station_of_request[l] = best;
      load[i] -= res;
      load[best] += res;
      spilled += 1.0;
    }
  }
  // De-aggregation spill: members of one class land on one station with
  // the class's full weight, so aggregated rounding leans harder on the
  // repair pass. The counter makes that visible.
  if (row_of != nullptr) MECSC_COUNT("agg.spill_requests", spilled);

  // Local improvement on the exploit branch: randomized rounding leaves
  // per-request variance, and independently sampled requests of one
  // service can scatter across stations, each paying the instantiation
  // delay. A 1-opt pass (moves restricted to each request's candidate
  // set, capacity respected, instantiation sharing accounted) tightens
  // the decision toward the fractional optimum without touching the
  // exploration picks, which must stay random for the bandit feedback.
  // Only the per-(service, station) user COUNT matters to the cost
  // deltas below; keeping member lists here once cost an erase(find(…))
  // scan of ~|R|/cells entries per accepted move — a hidden superlinear
  // term in |R| on the timed slot path.
  std::vector<std::uint32_t> users_of(problem.num_services() * ns, 0);
  auto cell = [ns](std::size_t k, std::size_t i) { return k * ns + i; };
  for (std::size_t l = 0; l < nr; ++l) {
    ++users_of[cell(problem.requests()[l].service_id, a.station_of_request[l])];
  }
  for (int pass = 0; pass < 2; ++pass) {
    bool improved = false;
    for (std::size_t l = 0; l < nr; ++l) {
      if (explored[l]) continue;
      std::size_t from = a.station_of_request[l];
      std::size_t k = problem.requests()[l].service_id;
      double res = problem.resource_demand_mhz(demands[l]);
      double base_cost = serve_cost(problem, l, from, demands[l], theta);
      // Leaving `from` saves its instantiation delay iff l is the last
      // user of service k there.
      double leave_saving = users_of[cell(k, from)] == 1
                                ? problem.instantiation_delay_ms(from, k)
                                : 0.0;
      std::size_t best_to = from;
      double best_delta = -1e-9;
      for (std::size_t j : candi[row(l)]) {
        if (j == from || cap[j] <= 0.0 || load[j] + res > cap[j]) continue;
        double open_cost = users_of[cell(k, j)] == 0
                               ? problem.instantiation_delay_ms(j, k)
                               : 0.0;
        double delta = serve_cost(problem, l, j, demands[l], theta) + open_cost -
                       base_cost - leave_saving;
        if (delta < best_delta) {
          best_delta = delta;
          best_to = j;
        }
      }
      if (best_to == from) continue;
      --users_of[cell(k, from)];
      ++users_of[cell(k, best_to)];
      load[from] -= res;
      load[best_to] += res;
      a.station_of_request[l] = best_to;
      improved = true;
    }
    if (!improved) break;
  }

  a.cached = derive_cached(problem, a.station_of_request);
  return a;
}

}  // namespace

Assignment round_assignment(const CachingProblem& problem,
                            const FractionalSolution& frac,
                            const std::vector<double>& demands,
                            const std::vector<double>& theta,
                            const RoundingOptions& options, common::Rng& rng) {
  return round_impl(problem, frac, nullptr, demands, theta, options, rng);
}

Assignment round_assignment_aggregated(const CachingProblem& problem,
                                       const FractionalSolution& class_frac,
                                       const DemandClassing& classing,
                                       const std::vector<double>& demands,
                                       const std::vector<double>& theta,
                                       const RoundingOptions& options,
                                       common::Rng& rng) {
  MECSC_CHECK_MSG(class_frac.x.size() == classing.num_classes(),
                  "fractional solution is not class-level");
  MECSC_CHECK_MSG(classing.num_requests() == problem.num_requests(),
                  "classing was built for a different problem");
  return round_impl(problem, class_frac, &classing.class_of_request(), demands,
                    theta, options, rng);
}

}  // namespace mecsc::core
