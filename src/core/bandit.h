#ifndef MECSC_CORE_BANDIT_H
#define MECSC_CORE_BANDIT_H

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace mecsc::core {

/// Per-station bandit statistics of the MAB view (paper §IV.A): each
/// base station is an arm; playing it (serving at least one request
/// there) reveals its per-unit delay d_i(t); θ_i is the empirical mean
/// of the observations and m_i the play count.
class BanditState {
 public:
  /// `prior` seeds θ_i for arms never played. The paper assumes d_max
  /// and d_min are known (Lemma 1), so the natural prior is their
  /// midpoint; an *optimistic* prior (d_min) makes unexplored arms look
  /// attractive — exposed for the exploration ablation.
  BanditState(std::size_t num_arms, double prior);

  /// Per-arm priors (e.g. the per-tier delay midpoints — base-station
  /// tiers are public infrastructure knowledge, so seeding each arm with
  /// its tier's range midpoint uses no more information than Lemma 1's
  /// known global bounds).
  explicit BanditState(std::vector<double> priors);

  /// Number of arms (= base stations).
  std::size_t num_arms() const noexcept { return theta_.size(); }

  /// Records one observation of arm i's delay.
  void observe(std::size_t arm, double delay);

  /// Current estimate θ_i (prior when unplayed).
  double theta(std::size_t arm) const;

  /// Number of times arm i has been played, m_i.
  std::size_t plays(std::size_t arm) const;

  /// Total observations across all arms.
  std::size_t total_plays() const noexcept { return total_plays_; }

  /// All θ_i as a vector (the LP's delay coefficients).
  std::vector<double> thetas() const;

  /// Fraction of arms played at least once.
  double coverage() const;

  /// Per-arm play counts (checkpoint export; pairs with restore()).
  const std::vector<std::size_t>& play_counts() const noexcept {
    return plays_;
  }

  /// Restores the exact statistics exported from another instance
  /// (checkpoint/resume). Sizes must match num_arms().
  void restore(const std::vector<double>& theta,
               const std::vector<std::size_t>& plays,
               std::size_t total_plays);

 private:
  std::vector<double> theta_;
  std::vector<std::size_t> plays_;
  std::size_t total_plays_ = 0;
};

/// ε exploration schedule of Algorithm 1. The paper's pseudocode fixes
/// ε_t = 1/4 (line 2) while the regret analysis (Theorem 1) uses a c/t
/// decay; both are provided, plus zero exploration for the ablation.
class EpsilonSchedule {
 public:
  /// Schedule family.
  enum class Kind {
    kFixed,  ///< Constant ε every slot (the pseudocode's 1/4).
    kDecay,  ///< ε_t = min(1, c / t), the analysed decay.
    kZero,   ///< No exploration (ablation).
  };

  /// Constant ε_t = epsilon (must lie in [0, 1]).
  static EpsilonSchedule fixed(double epsilon) {
    MECSC_CHECK_MSG(epsilon >= 0.0 && epsilon <= 1.0, "epsilon out of [0,1]");
    return EpsilonSchedule(Kind::kFixed, epsilon);
  }
  /// ε_t = min(1, c / t) with slot t counted from 1 and 0 < c < 1 per
  /// the analysis (values >= 1 are allowed for experimentation).
  static EpsilonSchedule decay(double c) {
    MECSC_CHECK_MSG(c > 0.0, "decay constant must be > 0");
    return EpsilonSchedule(Kind::kDecay, c);
  }
  /// ε_t = 0: pure exploitation.
  static EpsilonSchedule zero() { return EpsilonSchedule(Kind::kZero, 0.0); }

  /// ε for slot t (0-based; the schedule uses t+1 internally).
  double at(std::size_t t) const;

  /// The schedule family.
  Kind kind() const noexcept { return kind_; }
  /// The family's parameter (ε for kFixed, c for kDecay, unused for kZero).
  double parameter() const noexcept { return param_; }

 private:
  EpsilonSchedule(Kind kind, double param) : kind_(kind), param_(param) {}
  Kind kind_;
  double param_;
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_BANDIT_H
