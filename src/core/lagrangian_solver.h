#ifndef MECSC_CORE_LAGRANGIAN_SOLVER_H
#define MECSC_CORE_LAGRANGIAN_SOLVER_H

#include <cstdint>
#include <limits>
#include <vector>

#include "core/aggregation.h"
#include "core/problem.h"
#include "core/solver_tier.h"

namespace mecsc::core {

/// Tunables of the Lagrangian decomposition (DESIGN.md §16). The
/// environment-resolved defaults come from lagrangian_options_from_env()
/// so benches and the serve daemon pick up MECSC_LAG_ITERS /
/// MECSC_LAG_GAP without code changes; explicit values win.
struct LagrangianOptions {
  /// Subgradient ascent iteration cap per solve. With warm-started duals
  /// steady-state slots converge in a handful of iterations; the cap
  /// bounds the cold-start / regime-shift worst case before the
  /// gap-based fallback to the flow tier triggers.
  std::size_t max_iterations = 200;
  /// Relative duality-gap target: the solve reports convergence once
  /// (best primal − best dual) / max(best dual, ε) of the relaxed
  /// transportation LP drops below this.
  double target_gap = 0.01;
  /// SolverTier::kAuto picks the lagrangian tier only when the slot's LP
  /// has at least this many columns (demand classes when aggregation is
  /// active, requests otherwise); below it the certified flow solve is
  /// already fast and exact.
  std::size_t auto_threshold = 4096;
};

/// LagrangianOptions with MECSC_LAG_ITERS / MECSC_LAG_GAP applied over
/// the defaults (unset, empty or unparsable values keep the default).
LagrangianOptions lagrangian_options_from_env();

/// Cross-slot warm state of a LagrangianSolver: the station capacity
/// multipliers λ and the adaptive subgradient step scale. Demands and θ
/// drift slowly between slots, so yesterday's prices are a near-optimal
/// starting point — warm-started solves typically close the duality gap
/// in a few iterations instead of a cold-start's tens. Checkpointing
/// this (serve checkpoint format v2) is what keeps the lagrangian tier's
/// decisions bit-identical across a crash/resume boundary.
struct LagrangianWarmState {
  /// Per-station capacity price λ_i >= 0.
  std::vector<double> lambda;
  /// Adaptive Polyak step scale carried across slots.
  double step_scale = 1.0;
};

/// Outcome of one Lagrangian solve. `solution` is meaningful only when
/// `converged` is true; a non-converged outcome tells the caller to fall
/// back to the exact flow path (OL_GD's degradation chain does exactly
/// that and counts it in the `lag.fallbacks` telemetry).
struct LagrangianOutcome {
  /// True when the relative duality gap reached LagrangianOptions::
  /// target_gap within the iteration cap (and the instance was not
  /// capacity-short, which the dual cannot certify).
  bool converged = false;
  /// Final relative duality gap of the relaxed transportation LP.
  double gap = std::numeric_limits<double>::infinity();
  /// Best Lagrangian dual bound L(λ) reached (a lower bound on the LP).
  double dual_bound = -std::numeric_limits<double>::infinity();
  /// Subgradient iterations spent.
  std::size_t iterations = 0;
  /// Best feasible primal, scored with the true Eq. 3 objective exactly
  /// like the flow path scores its solutions.
  FractionalSolution solution;
};

/// Lagrangian decomposition solver for the per-slot LP relaxation
/// (DESIGN.md §16) — the third SolverTier, built for slots whose column
/// count outgrows even the pruned flow solve (ROADMAP item 2: 1M-request
/// slots).
///
/// Formulation: relaxing the per-station capacity constraints
/// Σ_e res_e·x_ei <= C_i of the transportation LP with multipliers
/// λ_i >= 0 decouples the columns — each demand class (or request)
/// independently solves argmin_i (c_ei + λ_i·res_e), an O(|BS|) scan
/// that is embarrassingly parallel over columns and needs no flow
/// network, no tableau and no Dijkstra. Subgradient ascent
/// (λ_i <- max(0, λ_i + step·(load_i − C_i)) with a Polyak step under an
/// adaptive scale) prices over-subscribed stations up until the argmin
/// profile spreads out; the per-iteration dual value
/// L(λ) = Σ_e min_i (c_ei + λ_i·res_e) − Σ_i λ_i·C_i lower-bounds the
/// LP (fontanf/gap's lagrelax_knapsack: the relaxation's value equals
/// the linear relaxation's).
///
/// Primal recovery: each iteration repairs the (possibly infeasible)
/// argmin assignment into a capacity-feasible fractional solution — each
/// over-capacity station keeps a pro-rata share of every resident column
/// and the spill pours into the cheapest stations with residual room
/// under the current prices. The best repaired primal across iterations is
/// the reported solution; its relaxed cost versus the best dual bound is
/// the duality gap of the stopping rule. Costs (including the one-shot
/// amortization of instantiation delays over expected service demand)
/// and the final true-Eq.3 scoring match FractionalSolver's, so the two
/// tiers' objectives are directly comparable — the tier-equivalence
/// suite (tests/test_solver_tiers.cpp) holds them within the gap
/// tolerance of each other.
///
/// Thread safety: like FractionalSolver, the reusable scratch makes
/// concurrent solve() calls on one instance a data race — give each
/// worker its own solver.
class LagrangianSolver {
 public:
  /// Binds the solver to `problem` (non-owning; must outlive the solver)
  /// with environment-resolved options.
  explicit LagrangianSolver(const CachingProblem& problem)
      : LagrangianSolver(problem, lagrangian_options_from_env()) {}

  /// Binds with explicit options (tests and ablations).
  LagrangianSolver(const CachingProblem& problem, LagrangianOptions options)
      : problem_(&problem), options_(options) {}

  /// The options the solver runs under.
  const LagrangianOptions& options() const noexcept { return options_; }

  /// Per-request solve (aggregation off): one column per request.
  LagrangianOutcome solve(const std::vector<double>& demands,
                          const std::vector<double>& theta) const;

  /// Aggregated solve: one column per demand class of `classing`, with
  /// the class's summed resource demand and exact member-summed cost
  /// coefficients (the same column model as
  /// FractionalSolver::solve_classes). Returns a class-level solution —
  /// de-aggregate with round_assignment_aggregated.
  LagrangianOutcome solve_classes(const DemandClassing& classing,
                                  const std::vector<double>& theta) const;

  /// Snapshots the cross-slot dual warm state (see LagrangianWarmState).
  LagrangianWarmState export_warm_state() const {
    return LagrangianWarmState{s_.lambda, s_.step_scale};
  }

  /// Restores a snapshot taken by export_warm_state(). Dimension-checked:
  /// a λ vector sized for a different station count (stale checkpoint
  /// after a topology change) is rejected and the solver cold-starts
  /// from λ = 0 instead of pricing the wrong stations.
  void import_warm_state(const LagrangianWarmState& state) const;

 private:
  /// Shared core over prefilled per-column scratch (res / svc / home /
  /// base_cost); `objective_divisor` is the request count the Eq. 3
  /// average divides by.
  LagrangianOutcome run(std::size_t n, double total_flow,
                        double objective_divisor) const;

  /// Reusable buffers; sized on first solve, reused afterwards. A
  /// "column" is a request (solve) or a demand class (solve_classes).
  struct Scratch {
    std::vector<double> res;             // per column, resource demand (MHz)
    std::vector<std::uint32_t> svc;      // per column, service id
    std::vector<std::uint32_t> home;     // per column, home station
    std::vector<double> service_demand;  // per service, expected demand
    std::vector<double> base_cost;       // n×ns true cost minus amortization
    std::vector<double> cost;            // n×ns amortized cost ĉ_ei
    std::vector<double> lambda;          // per station, capacity price
    std::vector<double> load;            // per station, argmin load (MHz)
    std::vector<double> room;            // per station, repair residual (MHz)
    std::vector<std::uint32_t> pick;     // per column, argmin station
    std::vector<double> x;               // n×ns repaired fractional round
    std::vector<double> x_best;          // n×ns best round so far
    double step_scale = 1.0;             // adaptive Polyak scale
  };

  const CachingProblem* problem_;
  LagrangianOptions options_;
  mutable Scratch s_;
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_LAGRANGIAN_SOLVER_H
