#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/error.h"

namespace mecsc::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string series_key(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

// ---- Histogram --------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  MECSC_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket edge");
  MECSC_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bucket edges must be sorted");
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::default_bounds() {
  static const std::vector<double> kBounds = {
      1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
      1.0,  2.5,    5.0,  10.0, 25.0,   50.0, 1e2,  2.5e2,  5e2,
      1e3,  2.5e3,  5e3,  1e4};
  return kBounds;
}

void Histogram::observe(double v) noexcept {
  std::size_t b = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  MECSC_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // Rank (1-based) of the requested order statistic.
  const double rank = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::uint64_t c = counts_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= rank) {
      // Linear interpolation inside bucket b, clamped to observed range.
      double lo = b == 0 ? min() : bounds_[b - 1];
      double hi = b < bounds_.size() ? bounds_[b] : max();
      lo = std::max(lo, min());
      hi = std::min(hi, max());
      if (hi < lo) return lo;
      double frac = c == 0 ? 0.0
                           : (rank - static_cast<double>(seen)) /
                                 static_cast<double>(c);
      frac = std::clamp(frac, 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out[b] = counts_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::merge_from(const Histogram& other) {
  MECSC_CHECK_MSG(bounds_ == other.bounds_,
                  "merging histograms with different bucket edges");
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b].fetch_add(other.counts_[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  atomic_min(min_, other.min());
  atomic_max(max_, other.max());
}

// ---- Registry ---------------------------------------------------------

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (labels.empty()) {
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::string key = series_key(name, labels);
  auto& slot = counters_[std::move(key)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (labels.empty()) {
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::string key = series_key(name, labels);
  auto& slot = gauges_[std::move(key)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (labels.empty()) {
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::string key = series_key(name, labels);
  auto& slot = histograms_[std::move(key)];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::default_bounds() : std::move(bounds));
  }
  return *slot;
}

void Registry::record_event(std::string json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(json_line));
}

void Registry::merge_from(const Registry& other) {
  // Snapshot `other` under its own lock first so the two registry locks
  // are never held at the same time. The Histogram pointers stay valid
  // after the lock is released: series are never removed while a merge
  // is running (merges happen on the single merging thread).
  auto counters = other.counters_snapshot();
  auto gauges = other.gauges_snapshot();
  auto events = other.events_snapshot();
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    hists.reserve(other.histograms_.size());
    for (const auto& [key, hist] : other.histograms_) {
      hists.emplace_back(key, hist.get());
    }
  }
  for (const auto& [key, value] : counters) counter(key).add(value);
  for (const auto& [key, value] : gauges) gauge(key).set(value);
  for (const auto& [key, hist] : hists) {
    histogram(key, {}, hist->bounds()).merge_from(*hist);
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  events_.clear();
}

std::vector<std::pair<std::string, double>> Registry::counters_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size());
  for (const auto& [key, c] : counters_) out.emplace_back(key, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) out.emplace_back(key, g->value());
  return out;
}

std::vector<HistogramSnapshot> Registry::histograms_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    HistogramSnapshot s;
    s.key = key;
    s.count = h->count();
    if (s.count > 0) {
      s.sum = h->sum();
      s.min = h->min();
      s.max = h->max();
      s.p50 = h->quantile(0.50);
      s.p90 = h->quantile(0.90);
      s.p99 = h->quantile(0.99);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> Registry::events_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         events_.empty();
}

// ---- Default / current registry ---------------------------------------

Registry& default_registry() {
  static Registry registry;
  return registry;
}

namespace {
thread_local Registry* t_current = nullptr;
}  // namespace

Registry& current() {
  return t_current != nullptr ? *t_current : default_registry();
}

ScopedRegistry::ScopedRegistry(Registry* registry) noexcept : prev_(t_current) {
  t_current = registry;
}

ScopedRegistry::~ScopedRegistry() { t_current = prev_; }

}  // namespace mecsc::obs
