#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/telemetry.h"

namespace mecsc::obs {

namespace {

/// JSON-escapes the metric key (keys are library-chosen and plain, but
/// labels could in principle carry anything).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Prints a double as a JSON-safe token (NaN/inf are not valid JSON).
/// max_digits10 keeps the round-trip exact — big counters (arcs
/// scanned, iterations) must not collapse to 6 significant digits.
void put_number(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  } else {
    out << "null";
  }
}

/// Prometheus series names cannot contain '.', '{' appears only in the
/// canonical label suffix which Prometheus shares, so only dots need
/// rewriting: `lp.simplex.iterations` → `lp_simplex_iterations`.
std::string prom_name(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

}  // namespace

void write_jsonl(const Registry& registry, std::ostream& out) {
  for (const auto& event : registry.events_snapshot()) {
    out << event << '\n';
  }
  for (const auto& [key, value] : registry.counters_snapshot()) {
    out << "{\"type\":\"counter\",\"series\":\"" << json_escape(key)
        << "\",\"value\":";
    put_number(out, value);
    out << "}\n";
  }
  for (const auto& [key, value] : registry.gauges_snapshot()) {
    out << "{\"type\":\"gauge\",\"series\":\"" << json_escape(key)
        << "\",\"value\":";
    put_number(out, value);
    out << "}\n";
  }
  for (const auto& h : registry.histograms_snapshot()) {
    out << "{\"type\":\"histogram\",\"series\":\"" << json_escape(h.key)
        << "\",\"count\":" << h.count << ",\"sum\":";
    put_number(out, h.sum);
    out << ",\"min\":";
    put_number(out, h.count > 0 ? h.min : 0.0);
    out << ",\"max\":";
    put_number(out, h.count > 0 ? h.max : 0.0);
    out << ",\"p50\":";
    put_number(out, h.p50);
    out << ",\"p90\":";
    put_number(out, h.p90);
    out << ",\"p99\":";
    put_number(out, h.p99);
    out << "}\n";
  }
  out.flush();
}

void write_prometheus(const Registry& registry, std::ostream& out) {
  for (const auto& [key, value] : registry.counters_snapshot()) {
    std::string name = prom_name(key);
    std::size_t brace = name.find('{');
    out << "# TYPE " << name.substr(0, brace) << " counter\n"
        << name << ' ' << value << '\n';
  }
  for (const auto& [key, value] : registry.gauges_snapshot()) {
    std::string name = prom_name(key);
    std::size_t brace = name.find('{');
    out << "# TYPE " << name.substr(0, brace) << " gauge\n"
        << name << ' ' << value << '\n';
  }
  for (const auto& h : registry.histograms_snapshot()) {
    std::string name = prom_name(h.key);
    out << "# TYPE " << name << " summary\n"
        << name << "_count " << h.count << '\n'
        << name << "_sum " << h.sum << '\n'
        << name << "{quantile=\"0.5\"} " << h.p50 << '\n'
        << name << "{quantile=\"0.9\"} " << h.p90 << '\n'
        << name << "{quantile=\"0.99\"} " << h.p99 << '\n';
  }
  out.flush();
}

void write_csv(const Registry& registry, std::ostream& out) {
  out << "kind,series,count,value_or_sum,min,max,p50,p90,p99\n";
  for (const auto& [key, value] : registry.counters_snapshot()) {
    out << "counter," << key << ",," << value << ",,,,,\n";
  }
  for (const auto& [key, value] : registry.gauges_snapshot()) {
    out << "gauge," << key << ",," << value << ",,,,,\n";
  }
  for (const auto& h : registry.histograms_snapshot()) {
    out << "histogram," << h.key << ',' << h.count << ',' << h.sum << ','
        << (h.count > 0 ? h.min : 0.0) << ',' << (h.count > 0 ? h.max : 0.0)
        << ',' << h.p50 << ',' << h.p90 << ',' << h.p99 << "\n";
  }
  out.flush();
}

ExportFormat format_for_path(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".prom") || ends_with(".txt")) return ExportFormat::kPrometheus;
  if (ends_with(".csv")) return ExportFormat::kCsv;
  return ExportFormat::kJsonl;
}

bool dump(const Registry& registry, std::ostream& fallback) {
  if (!enabled() || registry.empty()) return false;
  const char* path_env = std::getenv("MECSC_TELEMETRY_OUT");
  if (path_env != nullptr && *path_env != '\0') {
    std::string path(path_env);
    std::ofstream file(path);
    if (!file) {
      std::cerr << "mecsc: cannot open MECSC_TELEMETRY_OUT=" << path
                << " for writing; dumping to fallback stream\n";
    } else {
      switch (format_for_path(path)) {
        case ExportFormat::kPrometheus:
          write_prometheus(registry, file);
          break;
        case ExportFormat::kCsv:
          write_csv(registry, file);
          break;
        case ExportFormat::kJsonl:
          write_jsonl(registry, file);
          break;
      }
      return true;
    }
  }
  write_jsonl(registry, fallback);
  return true;
}

bool dump_default() { return dump(default_registry(), std::cout); }

}  // namespace mecsc::obs
