#include "obs/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mecsc::obs {

namespace detail {

int parse_level_from_env() {
  int parsed = static_cast<int>(Level::kOff);
  if (const char* v = std::getenv("MECSC_TELEMETRY");
      v != nullptr && *v != '\0') {
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
      parsed = static_cast<int>(Level::kOff);
    } else if (std::strcmp(v, "summary") == 0) {
      parsed = static_cast<int>(Level::kSummary);
    } else if (std::strcmp(v, "full") == 0) {
      parsed = static_cast<int>(Level::kFull);
    } else {
      std::fprintf(stderr,
                   "mecsc: ignoring MECSC_TELEMETRY=\"%s\" "
                   "(expected off|summary|full)\n",
                   v);
    }
  }
  // Another thread may have parsed (or set_level) concurrently; the
  // value is the same either way for the env path, and set_level wins.
  int expected = -1;
  g_level.compare_exchange_strong(expected, parsed,
                                  std::memory_order_relaxed);
  return g_level.load(std::memory_order_relaxed);
}

}  // namespace detail

void set_level(Level level) noexcept {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace mecsc::obs
