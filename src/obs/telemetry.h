#ifndef MECSC_OBS_TELEMETRY_H
#define MECSC_OBS_TELEMETRY_H

// Telemetry level switch for the mecsc::obs subsystem (DESIGN.md
// "Observability").
//
// The level is read once from MECSC_TELEMETRY (off | summary | full,
// default off) and cached in an inline atomic, so the hot-path guard
// every instrumentation macro starts with is a single relaxed load plus
// a compare — when telemetry is off nothing else runs: no registry
// lookup, no clock read, no allocation (tests/test_obs.cpp asserts the
// off path allocates nothing; bench_perf measures its cost).
//
// * off     — instrumentation compiles to the guard only.
// * summary — counters / gauges / histograms are recorded and exported
//             as an end-of-process dump.
// * full    — summary plus the per-slot structured event stream (JSONL).
//
// `set_level` exists for tests and embedding programs; it overrides the
// environment for the rest of the process.

#include <atomic>

namespace mecsc::obs {

/// Telemetry verbosity, ordered so that higher levels record strictly
/// more (the MECSC_TELEMETRY values off | summary | full).
enum class Level : int {
  kOff = 0,      ///< Instrumentation compiles down to the level guard.
  kSummary = 1,  ///< Counters, gauges and histograms; end-of-process dump.
  kFull = 2,     ///< Summary plus the per-slot structured event stream.
};

namespace detail {
/// -1 = not yet parsed from the environment.
inline std::atomic<int> g_level{-1};
/// Parses MECSC_TELEMETRY, stores and returns the result.
int parse_level_from_env();
}  // namespace detail

/// Current telemetry level (lazily parsed from MECSC_TELEMETRY).
inline Level level() noexcept {
  int l = detail::g_level.load(std::memory_order_relaxed);
  if (l < 0) l = detail::parse_level_from_env();
  return static_cast<Level>(l);
}

/// Overrides the level for the rest of the process (tests, embedders).
void set_level(Level level) noexcept;

/// True when any telemetry (summary or full) is recorded.
inline bool enabled() noexcept { return level() != Level::kOff; }

/// True when the structured per-slot event stream is recorded too.
inline bool full_enabled() noexcept { return level() == Level::kFull; }

}  // namespace mecsc::obs

#endif  // MECSC_OBS_TELEMETRY_H
