#ifndef MECSC_OBS_SPAN_H
#define MECSC_OBS_SPAN_H

// Scoped tracing spans (DESIGN.md "Observability").
//
// Two flavours, both RAII built on common::Stopwatch:
//
//  * MECSC_SPAN("lp.solve") — ambient span: when telemetry is enabled,
//    scope-exit observes the elapsed milliseconds into histogram
//    `span.lp.solve` of the thread's current registry. With telemetry
//    off the constructor is the inlined level guard and nothing else.
//
//  * TimelineSpan — explicit span writing into a SlotTimeline. NOT
//    gated on the telemetry level: sim::Simulator uses it to time every
//    slot's decide/score/observe phases, and SlotRecord::decision_time_ms
//    is derived from the recorded "algo.decide" entry, so the phase
//    clocks must run even when telemetry is off (they replace the
//    Stopwatch the simulator always paid for anyway).

#include <string_view>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace mecsc::obs {

/// One completed span. `name` must point at a string with static
/// storage duration (all instrumentation sites pass literals).
struct SpanEvent {
  const char* name = nullptr;  ///< Span name (static storage duration).
  double ms = 0.0;             ///< Elapsed wall-clock milliseconds.
};

/// Ordered span timeline of one simulated slot.
class SlotTimeline {
 public:
  /// Appends one completed span (`name` must outlive the timeline).
  void record(const char* name, double ms) { events_.push_back({name, ms}); }

  /// All spans in recording order.
  const std::vector<SpanEvent>& events() const noexcept { return events_; }

  /// Total milliseconds of all spans named `name` (0 when absent).
  double ms_of(std::string_view name) const noexcept {
    double total = 0.0;
    for (const auto& e : events_) {
      if (name == e.name) total += e.ms;
    }
    return total;
  }

 private:
  std::vector<SpanEvent> events_;
};

/// RAII span appending to an explicit timeline (nullptr = disabled).
class TimelineSpan {
 public:
  /// Starts timing; records into `timeline` at scope exit.
  TimelineSpan(SlotTimeline* timeline, const char* name) noexcept
      : timeline_(timeline), name_(name) {}
  /// Records the elapsed time (no-op with a null timeline).
  ~TimelineSpan() {
    if (timeline_ != nullptr) timeline_->record(name_, watch_.elapsed_ms());
  }
  TimelineSpan(const TimelineSpan&) = delete;
  TimelineSpan& operator=(const TimelineSpan&) = delete;

 private:
  SlotTimeline* timeline_;
  const char* name_;
  common::Stopwatch watch_;
};

/// RAII span recording into histogram `span.<name>` of the thread's
/// current registry when telemetry is enabled. `prefixed_name` must be
/// the full series name (the MECSC_SPAN macro prepends "span.") and
/// outlive the span (string literals do).
class Span {
 public:
  /// Starts timing when telemetry is enabled; free otherwise.
  explicit Span(const char* prefixed_name) noexcept {
    if (enabled()) {
      name_ = prefixed_name;
      watch_.restart();
    }
  }
  /// Observes the elapsed milliseconds into the span histogram.
  ~Span() {
    if (name_ != nullptr) {
      current().histogram(name_).observe(watch_.elapsed_ms());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  common::Stopwatch watch_;
};

}  // namespace mecsc::obs

#define MECSC_OBS_CONCAT2(a, b) a##b
#define MECSC_OBS_CONCAT(a, b) MECSC_OBS_CONCAT2(a, b)

/// Times the enclosing scope into histogram `span.<name>` of the
/// current registry (no-op when telemetry is off). `name` must be a
/// string literal, e.g. MECSC_SPAN("lp.solve").
#define MECSC_SPAN(name) \
  ::mecsc::obs::Span MECSC_OBS_CONCAT(mecsc_obs_span_, __LINE__)("span." name)

#endif  // MECSC_OBS_SPAN_H
