#ifndef MECSC_OBS_EXPORT_H
#define MECSC_OBS_EXPORT_H

// Structured exporters for a metrics Registry (DESIGN.md
// "Observability"): JSONL events+series, Prometheus text exposition,
// and CSV. Format selection and output destination for the end-of-run
// dump follow MECSC_TELEMETRY / MECSC_TELEMETRY_OUT.

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace mecsc::obs {

/// One JSON object per line: first every recorded event (full mode
/// fills these), then one line per counter / gauge / histogram series.
void write_jsonl(const Registry& registry, std::ostream& out);

/// Prometheus text exposition format (# TYPE comments, histograms as
/// _count/_sum plus quantile gauges).
void write_prometheus(const Registry& registry, std::ostream& out);

/// `kind,series,count,value_or_sum,min,max,p50,p90,p99` rows.
void write_csv(const Registry& registry, std::ostream& out);

/// Export format of `dump`.
enum class ExportFormat {
  kJsonl,       ///< One JSON object per line (events + series).
  kPrometheus,  ///< Prometheus text exposition format.
  kCsv,         ///< One `kind,series,...` row per series.
};

/// Derives the format from the output path's extension: `.prom`/`.txt`
/// → Prometheus, `.csv` → CSV, anything else → JSONL.
ExportFormat format_for_path(const std::string& path);

/// End-of-run dump honouring the environment: no-op when telemetry is
/// off or the registry is empty; otherwise writes to MECSC_TELEMETRY_OUT
/// (format by extension) or, when unset, JSONL to `fallback`. Returns
/// true when anything was written.
bool dump(const Registry& registry, std::ostream& fallback);

/// `dump` of the default registry to std::cout.
bool dump_default();

}  // namespace mecsc::obs

#endif  // MECSC_OBS_EXPORT_H
