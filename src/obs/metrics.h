#ifndef MECSC_OBS_METRICS_H
#define MECSC_OBS_METRICS_H

// Metrics registry of the mecsc::obs subsystem (DESIGN.md
// "Observability"): counters, gauges, and fixed-bucket histograms,
// addressable by name + label set.
//
// Concurrency model:
//  * Instrument handles (Counter/Gauge/Histogram) are lock-free once
//    obtained — increments from any number of threads sum exactly
//    (CAS loops on atomic doubles, atomic bucket counts).
//  * Creation / lookup takes the registry mutex; hot code paths call an
//    instrument once per solve or per slot, not per inner-loop
//    iteration, so the lookup cost is invisible next to the work it
//    measures.
//  * Storage is an ordered map, so every export and merge walks the
//    series in one deterministic (lexicographic) order.
//
// Determinism contract (matches sim::run_replications): each
// replication records into its own child registry (see ScopedRegistry);
// the runner merges children into the parent sequentially in ascending
// replication order, so floating-point sums accumulate in the same
// order regardless of MECSC_WORKERS and the merged registry is bitwise
// identical to a sequential run.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mecsc::obs {

/// Label set of a metric series, e.g. {{"arm", "3"}}. Kept sorted by key
/// when canonicalised into the series name.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series key: `name` for an empty label set, else
/// `name{k1=v1,k2=v2}` with keys sorted.
std::string series_key(std::string_view name, const Labels& labels);

/// Monotonically increasing sum. Exact under concurrent `add`s.
class Counter {
 public:
  /// Adds `delta` (may be fractional; exact under contention).
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  /// Adds 1.
  void inc() noexcept { add(1.0); }
  /// Current sum.
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-written value (ε trajectory, current loss, derived rates).
class Gauge {
 public:
  /// Overwrites the value (last writer wins).
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  /// Last-written value.
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with p50/p90/p99 queries.
///
/// `bounds` are the inclusive upper edges of the first `bounds.size()`
/// buckets; one implicit overflow bucket follows. Quantiles interpolate
/// linearly inside the selected bucket (clamped to the observed
/// min/max), so their resolution is the bucket width — adequate for the
/// timing and size distributions recorded here.
class Histogram {
 public:
  /// Builds a histogram with the given inclusive bucket upper edges
  /// (strictly increasing; one implicit overflow bucket is appended).
  explicit Histogram(std::vector<double> bounds);

  /// Default edges: 1–2.5–5 decades from 1e-3 to 1e4 — microseconds to
  /// tens of seconds when observations are milliseconds, and unit
  /// resolution for small integer sizes.
  static const std::vector<double>& default_bounds();

  /// Records one observation.
  void observe(double v) noexcept;

  /// Number of observations.
  std::uint64_t count() const noexcept;
  /// Sum of observations.
  double sum() const noexcept;
  /// Smallest observation (+inf when empty).
  double min() const noexcept;
  /// Largest observation (-inf when empty).
  double max() const noexcept;
  /// Mean observation (0 when empty).
  double mean() const noexcept;
  /// q in [0, 1]; returns 0 when the histogram is empty.
  double quantile(double q) const;

  /// The configured bucket upper edges.
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Bucket counts (bounds().size() + 1 entries, overflow last).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Adds `other`'s observations (same bounds required).
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Point-in-time view of a histogram, as used by the exporters.
struct HistogramSnapshot {
  std::string key;           ///< Canonical series key (see series_key).
  std::uint64_t count = 0;   ///< Number of observations.
  double sum = 0.0;          ///< Sum of observations.
  double min = 0.0;          ///< Smallest observation (0 when empty).
  double max = 0.0;          ///< Largest observation (0 when empty).
  double p50 = 0.0;          ///< Median (bucket-interpolated).
  double p90 = 0.0;          ///< 90th percentile (bucket-interpolated).
  double p99 = 0.0;          ///< 99th percentile (bucket-interpolated).
};

/// Named collection of metric series plus (in full mode) a structured
/// event log. See the file comment for the concurrency/determinism
/// contract.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name, const Labels& labels = {});
  /// Get-or-create. References stay valid for the registry's lifetime.
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `bounds` applies on first creation only (empty = default bounds).
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  /// Appends one pre-formatted JSON object line to the event log
  /// (recorded by instrumentation only in full mode).
  void record_event(std::string json_line);

  /// Folds `other` into this registry: counters add, gauges take
  /// `other`'s value, histograms merge bucket-wise, events append.
  /// Callers are responsible for invoking merges in a deterministic
  /// order (sim::run_replications merges children in rep order).
  void merge_from(const Registry& other);

  /// Drops every series and event.
  void clear();

  /// Counter series in lexicographic key order (for the exporters).
  std::vector<std::pair<std::string, double>> counters_snapshot() const;
  /// Gauge series in lexicographic key order (for the exporters).
  std::vector<std::pair<std::string, double>> gauges_snapshot() const;
  /// Histogram series in lexicographic key order (for the exporters).
  std::vector<HistogramSnapshot> histograms_snapshot() const;
  /// Event log lines in recording order.
  std::vector<std::string> events_snapshot() const;

  /// True when no series or events have been recorded.
  bool empty() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::string> events_;
};

/// Process-global default registry.
Registry& default_registry();

/// Registry the calling thread currently records into: the innermost
/// active ScopedRegistry on this thread, else the default registry.
Registry& current();

/// Redirects this thread's `current()` to `registry` for the scope's
/// lifetime (per-replication child registries in sim::run_replications).
class ScopedRegistry {
 public:
  /// Pushes `registry` as this thread's current one (null = default).
  explicit ScopedRegistry(Registry* registry) noexcept;
  /// Restores the previously current registry.
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

}  // namespace mecsc::obs

// ---- Instrumentation macros -------------------------------------------
// Every macro opens with the inlined `obs::enabled()` guard, so with
// MECSC_TELEMETRY=off the expansion is one relaxed atomic load and a
// branch — no lookup, no clock read, no allocation.

#include "obs/telemetry.h"

/// Adds `delta` to counter `name` in the current registry.
#define MECSC_COUNT(name, delta)                            \
  do {                                                      \
    if (::mecsc::obs::enabled())                            \
      ::mecsc::obs::current().counter(name).add(delta);     \
  } while (false)

/// Sets gauge `name` in the current registry.
#define MECSC_GAUGE_SET(name, value)                        \
  do {                                                      \
    if (::mecsc::obs::enabled())                            \
      ::mecsc::obs::current().gauge(name).set(value);       \
  } while (false)

/// Observes `value` into histogram `name` in the current registry.
#define MECSC_HISTOGRAM(name, value)                        \
  do {                                                      \
    if (::mecsc::obs::enabled())                            \
      ::mecsc::obs::current().histogram(name).observe(value); \
  } while (false)

#endif  // MECSC_OBS_METRICS_H
