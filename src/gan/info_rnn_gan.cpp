#include "gan/info_rnn_gan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.h"
#include "nn/autodiff.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mecsc::gan {

using nn::Matrix;
using nn::Var;

InfoRnnGan::InfoRnnGan(InfoRnnGanConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  MECSC_CHECK_MSG(config_.noise_dim > 0 && config_.num_codes > 0 &&
                      config_.hidden > 0 && config_.seq_len > 0,
                  "all Info-RNN-GAN sizes must be > 0");
  MECSC_CHECK_MSG(config_.batch_size > 0, "batch size must be > 0");
  MECSC_CHECK_MSG(config_.lambda_info >= 0.0, "lambda must be >= 0");
  MECSC_CHECK_MSG(config_.lambda_supervised >= 0.0, "lambda_supervised must be >= 0");

  common::Rng init = rng_.split();
  std::size_t g_in = config_.noise_dim + config_.num_codes + 1;
  g_rnn_ = nn::make_birnn(config_.rnn, g_in, config_.hidden, init);
  g_head_ = std::make_unique<nn::Linear>(2 * config_.hidden, 1, init);
  d_rnn_ = nn::make_birnn(config_.rnn, 1, config_.hidden, init);
  d_head_ = std::make_unique<nn::Linear>(2 * config_.hidden, 1, init);
  q_head_ = std::make_unique<nn::Linear>(2 * config_.hidden, config_.num_codes, init);

  std::vector<Var> g_params = g_rnn_->parameters();
  for (const auto& p : g_head_->parameters()) g_params.push_back(p);
  // InfoGAN practice: the Q head trains with the generator's optimizer
  // (both minimise −λ·L1); the shared trunk belongs to D's optimizer.
  for (const auto& p : q_head_->parameters()) g_params.push_back(p);
  g_opt_ = std::make_unique<nn::Adam>(std::move(g_params), config_.lr_generator);

  std::vector<Var> d_params = d_rnn_->parameters();
  for (const auto& p : d_head_->parameters()) d_params.push_back(p);
  d_opt_ = std::make_unique<nn::Adam>(std::move(d_params), config_.lr_discriminator);
}

Matrix InfoRnnGan::one_hot_batch(const std::vector<std::size_t>& codes) const {
  Matrix m(codes.size(), config_.num_codes);
  for (std::size_t b = 0; b < codes.size(); ++b) {
    MECSC_CHECK_MSG(codes[b] < config_.num_codes, "code id out of range");
    m.at(b, codes[b]) = 1.0;
  }
  return m;
}

InfoRnnGan::GeneratorOut InfoRnnGan::run_generator(
    const std::vector<Matrix>& teacher, const std::vector<std::size_t>& codes,
    bool with_noise) {
  MECSC_CHECK_MSG(!teacher.empty(), "empty teacher sequence");
  const std::size_t batch = teacher.front().rows();
  Matrix onehot = one_hot_batch(codes);
  std::vector<Var> inputs;
  inputs.reserve(teacher.size());
  for (const auto& prev : teacher) {
    MECSC_CHECK(prev.rows() == batch && prev.cols() == 1);
    Matrix z = with_noise ? Matrix::randn(batch, config_.noise_dim, rng_)
                          : Matrix(batch, config_.noise_dim);
    inputs.push_back(nn::constant(nn::concat_cols(nn::concat_cols(z, onehot), prev)));
  }
  std::vector<Var> hidden = g_rnn_->forward(inputs);
  GeneratorOut out;
  out.outputs.reserve(hidden.size());
  for (std::size_t t = 0; t < hidden.size(); ++t) {
    // Residual head: predicted demand = previous demand + bounded delta.
    // Demand series are strongly persistent (bursts last several slots),
    // so the head learns the *change* — burst onsets, diurnal slope,
    // decay — instead of re-deriving each user's absolute level.
    Var delta = nn::op_scale(nn::op_tanh(g_head_->forward(hidden[t])), 0.5);
    out.outputs.push_back(nn::op_add(nn::constant(teacher[t]), delta));
  }
  return out;
}

InfoRnnGan::DiscriminatorOut InfoRnnGan::run_discriminator(
    const std::vector<Var>& demand_seq) {
  std::vector<Var> hidden = d_rnn_->forward(demand_seq);
  DiscriminatorOut out;
  out.logits.reserve(hidden.size());
  out.q_logits.reserve(hidden.size());
  for (const auto& h : hidden) {
    out.logits.push_back(d_head_->forward(h));
    out.q_logits.push_back(q_head_->forward(h));
  }
  return out;
}

namespace {

/// Mean of per-step scalar losses: (1/T) Σ_t loss_t, matching the
/// monitoring-period average of Eq. 23.
Var mean_over_steps(const std::vector<Var>& losses) {
  MECSC_CHECK(!losses.empty());
  Var acc = losses.front();
  for (std::size_t t = 1; t < losses.size(); ++t) acc = nn::op_add(acc, losses[t]);
  return nn::op_scale(acc, 1.0 / static_cast<double>(losses.size()));
}

}  // namespace

GanStepStats InfoRnnGan::train_step(const std::vector<std::vector<double>>& windows,
                                    const std::vector<std::size_t>& codes) {
  MECSC_SPAN("gan.train_step");
  MECSC_CHECK_MSG(!windows.empty(), "empty batch");
  MECSC_CHECK_MSG(windows.size() == codes.size(), "windows/codes size mismatch");
  const std::size_t batch = windows.size();
  const std::size_t len = config_.seq_len;
  for (const auto& w : windows) {
    MECSC_CHECK_MSG(w.size() == len + 1, "window must have seq_len+1 values");
  }

  // Per-step batch matrices: teacher[t] = x_t, target/real[t] = x_{t+1}.
  std::vector<Matrix> teacher(len, Matrix(batch, 1));
  std::vector<Matrix> real(len, Matrix(batch, 1));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < len; ++t) {
      teacher[t].at(b, 0) = std::clamp(windows[b][t], 0.0, 1.0);
      real[t].at(b, 0) = std::clamp(windows[b][t + 1], 0.0, 1.0);
    }
  }
  Matrix ones(batch, 1, 1.0);
  Matrix zeros(batch, 1, 0.0);
  Matrix code_target = one_hot_batch(codes);
  GanStepStats stats;

  // ---- Discriminator step: max log D(real) + log(1 − D(G(z,c))). ----
  {
    GeneratorOut fake = run_generator(teacher, codes);
    std::vector<Var> fake_detached;
    fake_detached.reserve(len);
    for (const auto& o : fake.outputs) fake_detached.push_back(nn::constant(o->value));
    std::vector<Var> real_seq;
    real_seq.reserve(len);
    for (const auto& r : real) real_seq.push_back(nn::constant(r));

    DiscriminatorOut on_real = run_discriminator(real_seq);
    DiscriminatorOut on_fake = run_discriminator(fake_detached);
    std::vector<Var> step_losses;
    step_losses.reserve(2 * len);
    Var ones_c = nn::constant(ones);
    Var zeros_c = nn::constant(zeros);
    for (std::size_t t = 0; t < len; ++t) {
      step_losses.push_back(nn::loss_bce_with_logits(on_real.logits[t], ones_c));
      step_losses.push_back(nn::loss_bce_with_logits(on_fake.logits[t], zeros_c));
    }
    Var d_loss = mean_over_steps(step_losses);
    g_opt_->zero_grad();
    d_opt_->zero_grad();
    nn::backward(d_loss);
    double d_norm = d_opt_->clip_grad_norm(config_.grad_clip);
    MECSC_HISTOGRAM("gan.grad_norm.d", d_norm);
    d_opt_->step();
    stats.d_loss = d_loss->value[0];
  }

  // ---- Generator/Q step: min BCE(D(fake), 1) + λ·CE(Q(fake), c). ----
  {
    GeneratorOut fake = run_generator(teacher, codes);
    DiscriminatorOut on_fake = run_discriminator(fake.outputs);
    Var ones_c = nn::constant(ones);
    Var code_c = nn::constant(code_target);
    std::vector<Var> adv_losses;
    std::vector<Var> info_losses;
    std::vector<Var> sup_losses;
    adv_losses.reserve(len);
    info_losses.reserve(len);
    sup_losses.reserve(len);
    for (std::size_t t = 0; t < len; ++t) {
      adv_losses.push_back(nn::loss_bce_with_logits(on_fake.logits[t], ones_c));
      info_losses.push_back(nn::loss_softmax_cross_entropy(on_fake.q_logits[t], code_c));
      sup_losses.push_back(nn::loss_mse(fake.outputs[t], nn::constant(real[t])));
    }
    Var adv = mean_over_steps(adv_losses);
    Var info = mean_over_steps(info_losses);
    Var sup = mean_over_steps(sup_losses);
    Var g_loss = nn::op_add(
        nn::op_add(adv, nn::op_scale(info, config_.lambda_info)),
        nn::op_scale(sup, config_.lambda_supervised));
    g_opt_->zero_grad();
    d_opt_->zero_grad();  // trunk grads from this pass are discarded
    nn::backward(g_loss);
    double g_norm = g_opt_->clip_grad_norm(config_.grad_clip);
    MECSC_HISTOGRAM("gan.grad_norm.g", g_norm);
    g_opt_->step();
    d_opt_->zero_grad();
    stats.g_adv_loss = adv->value[0];
    stats.info_loss = info->value[0];
    stats.supervised_loss = sup->value[0];
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::current();
    reg.counter("gan.train_steps").inc();
    reg.gauge("gan.d_loss").set(stats.d_loss);
    reg.gauge("gan.g_adv_loss").set(stats.g_adv_loss);
    reg.gauge("gan.info_loss").set(stats.info_loss);
    reg.gauge("gan.supervised_loss").set(stats.supervised_loss);
    reg.histogram("gan.d_loss_trajectory").observe(stats.d_loss);
    reg.histogram("gan.g_adv_loss_trajectory").observe(stats.g_adv_loss);
  }
  return stats;
}

GanStepStats InfoRnnGan::train(const std::vector<std::vector<double>>& cluster_series,
                               std::size_t steps) {
  std::vector<std::size_t> codes(cluster_series.size());
  for (std::size_t c = 0; c < codes.size(); ++c) codes[c] = c % config_.num_codes;
  return train_with_codes(cluster_series, codes, steps);
}

GanStepStats InfoRnnGan::train_with_codes(
    const std::vector<std::vector<double>>& series,
    const std::vector<std::size_t>& series_codes, std::size_t steps) {
  MECSC_CHECK_MSG(!series.empty(), "no training series");
  MECSC_CHECK_MSG(series.size() == series_codes.size(),
                  "one code per training series required");
  const std::size_t len = config_.seq_len;
  std::vector<std::size_t> usable;
  for (std::size_t c = 0; c < series.size(); ++c) {
    MECSC_CHECK_MSG(series_codes[c] < config_.num_codes, "code out of range");
    if (series[c].size() >= len + 2) usable.push_back(c);
  }
  MECSC_CHECK_MSG(!usable.empty(),
                  "every training series is shorter than seq_len+2");

  // Fixed validation batch: the most recent window of each usable series
  // (round-robin up to one batch worth).
  std::vector<std::vector<double>> val_windows;
  std::vector<std::size_t> val_codes;
  for (std::size_t j = 0; j < std::min(usable.size(), config_.batch_size); ++j) {
    const auto& s_c = series[usable[j]];
    val_windows.emplace_back(s_c.end() - static_cast<std::ptrdiff_t>(len + 1),
                             s_c.end());
    val_codes.push_back(series_codes[usable[j]]);
  }

  GanStepStats last;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_weights;
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<std::vector<double>> windows;
    std::vector<std::size_t> codes;
    windows.reserve(config_.batch_size);
    for (std::size_t b = 0; b < config_.batch_size; ++b) {
      std::size_t c = usable[rng_.index(usable.size())];
      const auto& s_c = series[c];
      std::size_t start = rng_.index(s_c.size() - len - 1);
      windows.emplace_back(s_c.begin() + static_cast<std::ptrdiff_t>(start),
                           s_c.begin() + static_cast<std::ptrdiff_t>(start + len + 1));
      codes.push_back(series_codes[c]);
    }
    last = train_step(windows, codes);
    if ((s + 1) % kValidationInterval == 0 || s + 1 == steps) {
      double val = validation_mse(val_windows, val_codes);
      if (val < best_val) {
        best_val = val;
        best_weights = snapshot_generator();
      }
    }
  }
  if (!best_weights.empty()) restore_generator(best_weights);
  return last;
}

double InfoRnnGan::validation_mse(const std::vector<std::vector<double>>& windows,
                                  const std::vector<std::size_t>& codes) {
  const std::size_t len = config_.seq_len;
  const std::size_t batch = windows.size();
  std::vector<Matrix> teacher(len, Matrix(batch, 1));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < len; ++t) {
      teacher[t].at(b, 0) = std::clamp(windows[b][t], 0.0, 1.0);
    }
  }
  nn::NoGradGuard no_grad;
  GeneratorOut out = run_generator(teacher, codes, /*with_noise=*/false);
  double mse = 0.0;
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t b = 0; b < batch; ++b) {
      double err = out.outputs[t]->value[b] -
                   std::clamp(windows[b][t + 1], 0.0, 1.0);
      mse += err * err;
    }
  }
  return mse / static_cast<double>(len * batch);
}

std::vector<Matrix> InfoRnnGan::snapshot_generator() const {
  std::vector<Matrix> snap;
  for (const auto& p : g_rnn_->parameters()) snap.push_back(p->value);
  for (const auto& p : g_head_->parameters()) snap.push_back(p->value);
  return snap;
}

void InfoRnnGan::restore_generator(const std::vector<Matrix>& snapshot) {
  std::size_t i = 0;
  for (const auto& p : g_rnn_->parameters()) p->value = snapshot.at(i++);
  for (const auto& p : g_head_->parameters()) p->value = snapshot.at(i++);
  MECSC_CHECK(i == snapshot.size());
}

double InfoRnnGan::predict_next(const std::vector<double>& history,
                                std::size_t cluster) {
  return predict_next_batch({history}, {cluster}).front();
}

std::vector<double> InfoRnnGan::predict_next_batch(
    const std::vector<std::vector<double>>& histories,
    const std::vector<std::size_t>& clusters) {
  MECSC_CHECK_MSG(histories.size() == clusters.size(),
                  "histories/clusters size mismatch");
  if (histories.empty()) return {};
  for (std::size_t c : clusters) {
    MECSC_CHECK_MSG(c < config_.num_codes, "cluster id out of range");
  }
  const std::size_t len = config_.seq_len;
  const std::size_t batch = histories.size();
  std::vector<Matrix> teacher(len, Matrix(batch, 1));
  for (std::size_t b = 0; b < batch; ++b) {
    const auto& history = histories[b];
    for (std::size_t t = 0; t < len; ++t) {
      // Right-align the history; zero-pad in front when it is shorter.
      std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(history.size()) -
                           static_cast<std::ptrdiff_t>(len) +
                           static_cast<std::ptrdiff_t>(t);
      double v = idx >= 0 ? history[static_cast<std::size_t>(idx)] : 0.0;
      teacher[t].at(b, 0) = std::clamp(v, 0.0, 1.0);
    }
  }
  // Zero noise at inference: the point forecast is the generator's mean
  // continuation, not one sampled trajectory. No tape either — this is
  // a pure forward pass. The residual head can overshoot [0,1] slightly;
  // demand is defined on the normalized unit interval, so clamp.
  nn::NoGradGuard no_grad;
  GeneratorOut out = run_generator(teacher, clusters, /*with_noise=*/false);
  const Matrix& last = out.outputs.back()->value;
  std::vector<double> result(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    result[b] = std::clamp(last[b], 0.0, 1.0);
  }
  return result;
}

std::vector<double> InfoRnnGan::generate(std::size_t cluster, std::size_t length) {
  MECSC_CHECK_MSG(length > 0, "length must be > 0");
  // Free-running generation with a bidirectional RNN is done
  // iteratively: re-run over the prefix generated so far and append the
  // last output (O(L^2) but L is small).
  std::vector<double> series;
  series.reserve(length);
  std::vector<double> history;
  for (std::size_t s = 0; s < length; ++s) {
    double next = predict_next(history, cluster);
    series.push_back(next);
    history.push_back(next);
  }
  return series;
}

double InfoRnnGan::discriminator_score(const std::vector<double>& window) {
  MECSC_CHECK_MSG(!window.empty(), "empty window");
  nn::NoGradGuard no_grad;
  std::vector<Var> seq;
  seq.reserve(window.size());
  for (double v : window) {
    seq.push_back(nn::constant(Matrix(1, 1, std::clamp(v, 0.0, 1.0))));
  }
  DiscriminatorOut out = run_discriminator(seq);
  double mean_logit = 0.0;
  for (const auto& l : out.logits) mean_logit += l->value[0];
  mean_logit /= static_cast<double>(out.logits.size());
  return 1.0 / (1.0 + std::exp(-mean_logit));
}

std::vector<Var> InfoRnnGan::all_parameters() const {
  std::vector<Var> all;
  for (const auto* m : {static_cast<const nn::Module*>(g_rnn_.get()),
                        static_cast<const nn::Module*>(g_head_.get()),
                        static_cast<const nn::Module*>(d_rnn_.get()),
                        static_cast<const nn::Module*>(d_head_.get()),
                        static_cast<const nn::Module*>(q_head_.get())}) {
    for (const auto& p : m->parameters()) all.push_back(p);
  }
  return all;
}

std::string InfoRnnGan::serialize() const {
  std::string out = "mecsc-info-rnn-gan v1\n";
  char buf[64];
  auto put_size = [&](std::size_t v) { out += std::to_string(v); out += ' '; };
  auto put_double = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g ", v);
    out += buf;
  };
  put_size(config_.noise_dim);
  put_size(config_.num_codes);
  put_size(config_.hidden);
  put_size(config_.seq_len);
  put_double(config_.lambda_info);
  put_double(config_.lambda_supervised);
  put_double(config_.lr_generator);
  put_double(config_.lr_discriminator);
  put_double(config_.grad_clip);
  put_size(config_.batch_size);
  put_size(static_cast<std::size_t>(config_.rnn));
  out += (char)10;
  for (const auto& p : all_parameters()) {
    put_size(p->value.rows());
    put_size(p->value.cols());
    for (double v : p->value.data()) put_double(v);
    out += '\n';
  }
  return out;
}

InfoRnnGan InfoRnnGan::deserialize(const std::string& blob, std::uint64_t seed) {
  MECSC_CHECK_MSG(blob.rfind("mecsc-info-rnn-gan v1\n", 0) == 0,
                  "unrecognised Info-RNN-GAN blob");
  const char* cursor = blob.c_str() + std::string("mecsc-info-rnn-gan v1\n").size();
  char* next = nullptr;
  auto get_size = [&]() -> std::size_t {
    unsigned long long v = std::strtoull(cursor, &next, 10);
    MECSC_CHECK_MSG(next != cursor, "truncated Info-RNN-GAN blob");
    cursor = next;
    return static_cast<std::size_t>(v);
  };
  auto get_double = [&]() -> double {
    double v = std::strtod(cursor, &next);
    MECSC_CHECK_MSG(next != cursor, "truncated Info-RNN-GAN blob");
    cursor = next;
    return v;
  };
  InfoRnnGanConfig cfg;
  cfg.noise_dim = get_size();
  cfg.num_codes = get_size();
  cfg.hidden = get_size();
  cfg.seq_len = get_size();
  cfg.lambda_info = get_double();
  cfg.lambda_supervised = get_double();
  cfg.lr_generator = get_double();
  cfg.lr_discriminator = get_double();
  cfg.grad_clip = get_double();
  cfg.batch_size = get_size();
  cfg.rnn = static_cast<nn::RnnKind>(get_size());

  InfoRnnGan model(cfg, seed);
  for (const auto& p : model.all_parameters()) {
    std::size_t rows = get_size();
    std::size_t cols = get_size();
    MECSC_CHECK_MSG(rows == p->value.rows() && cols == p->value.cols(),
                    "Info-RNN-GAN blob shape mismatch");
    for (double& v : p->value.data()) v = get_double();
  }
  return model;
}

std::size_t InfoRnnGan::generator_parameter_count() const {
  return g_rnn_->parameter_count() + g_head_->parameter_count();
}

std::size_t InfoRnnGan::discriminator_parameter_count() const {
  return d_rnn_->parameter_count() + d_head_->parameter_count() +
         q_head_->parameter_count();
}

}  // namespace mecsc::gan

