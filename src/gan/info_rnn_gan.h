#ifndef MECSC_GAN_INFO_RNN_GAN_H
#define MECSC_GAN_INFO_RNN_GAN_H

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace mecsc::gan {

/// Hyper-parameters of the Info-RNN-GAN (paper §V.B, Fig. 2).
struct InfoRnnGanConfig {
  /// Noise vector z^t dimension.
  std::size_t noise_dim = 8;
  /// Latent-code dimension |C| — the one-hot encoding of the user's
  /// location cluster (the paper one-hot encodes locations and feeds
  /// them as the latent C).
  std::size_t num_codes = 8;
  /// Bi-LSTM hidden width (per direction) of generator & discriminator.
  std::size_t hidden = 24;
  /// Unrolled sequence length (one "monitoring period" T of Eq. 23).
  std::size_t seq_len = 24;
  /// λ weight of the mutual-information lower bound L1 (Eq. 24/26).
  double lambda_info = 1.0;
  /// Weight of the supervised teacher-forcing term added to the
  /// generator loss: MSE between the generated step and the true next
  /// value. A purely adversarial generator only has to produce
  /// *plausible* sequences; prediction additionally needs *accurate
  /// continuations* of the conditioning history, which is what this term
  /// (standard in conditional sequence GANs) enforces. Set to 0 for the
  /// literal Eq. 26 objective.
  double lambda_supervised = 20.0;
  double lr_generator = 3e-3;
  double lr_discriminator = 3e-3;
  double grad_clip = 5.0;
  std::size_t batch_size = 16;
  /// Recurrent core of generator and discriminator. The paper uses
  /// Bi-LSTM; Bi-GRU is a lighter alternative compared in
  /// `bench_ablation_rnn`.
  nn::RnnKind rnn = nn::RnnKind::kLstm;
};

/// One training step's losses.
struct GanStepStats {
  double d_loss = 0.0;        // discriminator BCE (real=1, fake=0)
  double g_adv_loss = 0.0;    // generator adversarial BCE (fake=1)
  double info_loss = 0.0;     // −L1 term: CE of Q recovering the code
  double supervised_loss = 0.0;  // teacher-forcing MSE of the generator
};

/// The paper's Info-RNN-GAN demand model.
///
/// * Generator G: per-step input [z^t, one-hot c, previous demand]
///   → two-direction LSTM → linear+sigmoid head → demand in [0,1].
///   Conditioning on the previous observed demand (teacher forcing)
///   turns the generative model into a usable next-slot predictor while
///   preserving the adversarial + mutual-information loss structure
///   (DESIGN.md §2 records this substitution).
/// * Discriminator D: per-step input = demand value → Bi-LSTM trunk →
///   per-step real/fake logit. The BCE is averaged over the T steps,
///   matching Eq. 23's (1/T) Σ_t form.
/// * Q head: shares D's trunk, per-step softmax over codes; its
///   cross-entropy against the true one-hot code is the variational
///   lower bound L1 on the mutual information I(c; G(z,c)) (Eq. 25);
///   both G and Q minimise it with weight λ (Eq. 26).
///
/// All demands handled here are normalized to [0,1]; the predictor
/// adapter owns the scaling.
class InfoRnnGan {
 public:
  InfoRnnGan(InfoRnnGanConfig config, std::uint64_t seed);

  const InfoRnnGanConfig& config() const noexcept { return config_; }

  /// One adversarial step (one D update + one G/Q update) on a batch of
  /// real windows. `windows[b]` has seq_len+1 values (the leading value
  /// is the teacher-forcing input of step 0); `codes[b]` is the cluster
  /// id of window b.
  GanStepStats train_step(const std::vector<std::vector<double>>& windows,
                          const std::vector<std::size_t>& codes);

  /// Trains for `steps` batches sampled from per-cluster series (each
  /// series must be longer than seq_len+1; shorter ones are skipped).
  /// Series index doubles as the latent code. Returns the stats of the
  /// last step.
  GanStepStats train(const std::vector<std::vector<double>>& cluster_series,
                     std::size_t steps);

  /// As `train`, but with an explicit latent code per series — used when
  /// several users' series share one location-cluster code (the paper's
  /// per-request prediction with per-hotspot latents).
  ///
  /// Adversarial training can drift late in a run; every
  /// `validation_interval` steps the generator's teacher-forced MSE on a
  /// fixed validation batch is evaluated and the best generator weights
  /// seen are restored at the end (GAN checkpointing).
  GanStepStats train_with_codes(const std::vector<std::vector<double>>& series,
                                const std::vector<std::size_t>& codes,
                                std::size_t steps);

  /// Steps between validation checkpoints during train/train_with_codes.
  static constexpr std::size_t kValidationInterval = 25;

  /// Predicts the next normalized demand after `history` for a cluster.
  /// Uses the last seq_len values (zero-padded in front when shorter).
  double predict_next(const std::vector<double>& history, std::size_t cluster);

  /// Batched `predict_next`: one fused zero-noise forward pass over all
  /// (history, cluster) pairs at once, so every per-step matmul runs at
  /// batch = histories.size() instead of 1. Bit-identical to calling
  /// predict_next per pair (row-major kernels process batch rows
  /// independently and inference is deterministic); the win is purely
  /// throughput. `histories[i]` pairs with `clusters[i]`.
  std::vector<double> predict_next_batch(
      const std::vector<std::vector<double>>& histories,
      const std::vector<std::size_t>& clusters);

  /// Generates a free-running synthetic window for a cluster (useful for
  /// data augmentation and in tests for mode-collapse checks).
  std::vector<double> generate(std::size_t cluster, std::size_t length);

  /// Discriminator's mean P(real) over a window — exposed for tests.
  double discriminator_score(const std::vector<double>& window);

  std::size_t generator_parameter_count() const;
  std::size_t discriminator_parameter_count() const;

  /// Serialises the configuration and every network weight to a text
  /// blob (exact round-trip), so a trained predictor can be stored and
  /// reloaded instead of retrained.
  std::string serialize() const;

  /// Reconstructs a model from `serialize()` output. `seed` reseeds the
  /// RNG used for training noise / batch sampling after the restore.
  static InfoRnnGan deserialize(const std::string& blob, std::uint64_t seed);

 private:
  struct GeneratorOut {
    std::vector<nn::Var> outputs;  // per step, batch × 1
  };

  /// Runs G over a window batch; `teacher` holds the per-step previous
  /// demand (batch × 1 each). `with_noise = false` feeds z = 0 (mean
  /// forecast at inference time).
  GeneratorOut run_generator(const std::vector<nn::Matrix>& teacher,
                             const std::vector<std::size_t>& codes,
                             bool with_noise = true);
  /// Runs D+Q over a demand sequence (per-step batch × 1 vars).
  struct DiscriminatorOut {
    std::vector<nn::Var> logits;    // per step, batch × 1
    std::vector<nn::Var> q_logits;  // per step, batch × num_codes
  };
  DiscriminatorOut run_discriminator(const std::vector<nn::Var>& demand_seq);

  nn::Matrix one_hot_batch(const std::vector<std::size_t>& codes) const;

  /// Teacher-forced zero-noise MSE of the generator on validation
  /// windows (checkpoint criterion).
  double validation_mse(const std::vector<std::vector<double>>& windows,
                        const std::vector<std::size_t>& codes);
  std::vector<nn::Matrix> snapshot_generator() const;
  void restore_generator(const std::vector<nn::Matrix>& snapshot);
  /// Every trainable parameter node (G, D, Q), in a fixed order.
  std::vector<nn::Var> all_parameters() const;

  InfoRnnGanConfig config_;
  common::Rng rng_;

  // Generator.
  std::unique_ptr<nn::BiRnn> g_rnn_;
  std::unique_ptr<nn::Linear> g_head_;
  // Discriminator trunk + heads.
  std::unique_ptr<nn::BiRnn> d_rnn_;
  std::unique_ptr<nn::Linear> d_head_;
  std::unique_ptr<nn::Linear> q_head_;

  std::unique_ptr<nn::Adam> g_opt_;  // updates G (+ Q via info term)
  std::unique_ptr<nn::Adam> d_opt_;
};

}  // namespace mecsc::gan

#endif  // MECSC_GAN_INFO_RNN_GAN_H
