#include "flow/simd_relax.h"

#if defined(MECSC_SIMD_AVX2)

#include <immintrin.h>

// Every function carries the target attribute instead of the TU being
// compiled with -mavx2, so the rest of the binary stays portable and the
// scalar fallback build (-DMECSC_FORCE_SCALAR) simply drops this TU.
#define MECSC_AVX2 __attribute__((target("avx2,fma")))

namespace mecsc::flow::avx2 {

MECSC_AVX2 std::size_t filter_candidates(const double* cap, const double* cost,
                                         const std::uint32_t* to,
                                         const double* pot, const double* dist,
                                         double base, double eps,
                                         std::uint32_t lo, std::uint32_t hi,
                                         std::uint32_t* out) {
  std::size_t m = 0;
  const __m256d vbase = _mm256_set1_pd(base);
  const __m256d veps = _mm256_set1_pd(eps);
  std::uint32_t at = lo;
  for (; at + 4 <= hi; at += 4) {
    // cap > eps — exact: residual capacities don't change mid-pass.
    const __m256d vcap = _mm256_loadu_pd(cap + at);
    const __m256d cap_ok = _mm256_cmp_pd(vcap, veps, _CMP_GT_OQ);
    if (_mm256_movemask_pd(cap_ok) == 0) continue;
    // nd = (base + cost) − pot[v], same association as the scalar loop.
    const __m128i vidx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(to + at));
    const __m256d vpot = _mm256_i32gather_pd(pot, vidx, 8);
    const __m256d vdist = _mm256_i32gather_pd(dist, vidx, 8);
    const __m256d nd = _mm256_sub_pd(
        _mm256_add_pd(vbase, _mm256_loadu_pd(cost + at)), vpot);
    const __m256d dist_ok =
        _mm256_cmp_pd(nd, _mm256_sub_pd(vdist, veps), _CMP_LT_OQ);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(cap_ok, dist_ok)));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out[m++] = at + lane;
      mask &= mask - 1;
    }
  }
  for (; at < hi; ++at) {  // tail: same coarse test, scalar
    if (cap[at] <= eps) continue;
    const std::uint32_t v = to[at];
    const double nd = base + cost[at] - pot[v];
    if (nd < dist[v] - eps) out[m++] = at;
  }
  return m;
}

MECSC_AVX2 void potential_update(double* pot, const double* dist, double dsink,
                                 std::size_t n) {
  const __m256d vsink = _mm256_set1_pd(dsink);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // std::min(dist, dsink) returns dist on ties; minpd returns its
    // second operand on ties/unordered, so pass dist second. (dist is
    // finite-or-+inf, never NaN.)
    const __m256d inc = _mm256_min_pd(vsink, _mm256_loadu_pd(dist + i));
    _mm256_storeu_pd(pot + i, _mm256_add_pd(_mm256_loadu_pd(pot + i), inc));
  }
  for (; i < n; ++i) {
    pot[i] += dsink < dist[i] ? dsink : dist[i];
  }
}

MECSC_AVX2 std::size_t frontier_argmin(const std::uint32_t* frontier,
                                       std::size_t f, const double* dist) {
  std::size_t s = 0;
  double best;
  std::size_t best_at;
  if (f >= 4) {
    // Lane l tracks the min (and its first position, held exactly as a
    // double) over frontier positions ≡ l (mod 4).
    __m256d vbest = _mm256_set1_pd(__builtin_inf());
    __m256d vbest_at = _mm256_setzero_pd();
    __m256d vat = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
    const __m256d vfour = _mm256_set1_pd(4.0);
    for (; s + 4 <= f; s += 4) {
      const __m128i vidx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(frontier + s));
      const __m256d vd = _mm256_i32gather_pd(dist, vidx, 8);
      const __m256d lt = _mm256_cmp_pd(vd, vbest, _CMP_LT_OQ);  // strict <
      vbest = _mm256_blendv_pd(vbest, vd, lt);
      vbest_at = _mm256_blendv_pd(vbest_at, vat, lt);
      vat = _mm256_add_pd(vat, vfour);
    }
    alignas(32) double lane_best[4];
    alignas(32) double lane_at[4];
    _mm256_store_pd(lane_best, vbest);
    _mm256_store_pd(lane_at, vbest_at);
    best = lane_best[0];
    best_at = static_cast<std::size_t>(lane_at[0]);
    for (int l = 1; l < 4; ++l) {
      // Ties across lanes resolve to the smallest position — exactly the
      // scalar scan's first-occurrence rule.
      const std::size_t at = static_cast<std::size_t>(lane_at[l]);
      if (lane_best[l] < best || (lane_best[l] == best && at < best_at)) {
        best = lane_best[l];
        best_at = at;
      }
    }
  } else {
    best = dist[frontier[0]];
    best_at = 0;
    s = 1;
  }
  for (; s < f; ++s) {  // tail positions are all above best_at: strict <
    const double d = dist[frontier[s]];
    if (d < best) {
      best = d;
      best_at = s;
    }
  }
  return best_at;
}

}  // namespace mecsc::flow::avx2

#endif  // MECSC_SIMD_AVX2
