#ifndef MECSC_FLOW_SIMD_RELAX_H
#define MECSC_FLOW_SIMD_RELAX_H

// AVX2 helpers for MinCostFlow's Dijkstra inner loop. Only compiled on
// x86-64 GCC/Clang builds (see common/simd.h); callers must check
// common::simd::active() first. Both helpers are exact — they use only
// adds/compares/min in the same order as the scalar code, no FMA and no
// reductions — so flow results are bit-identical in every SIMD mode.

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

#if defined(MECSC_SIMD_AVX2)

namespace mecsc::flow::avx2 {

/// Coarse relaxation filter over the CSR arc slots [lo, hi) of one tail
/// node: writes to `out` (caller-sized to at least hi−lo) every slot with
/// residual capacity > eps whose tentative distance base + cost[slot] −
/// pot[to[slot]] is < dist[to[slot]] − eps, preserving slot order.
/// Returns the candidate count.
///
/// The filter reads `dist` as of call time while the caller updates it
/// candidate-by-candidate, so it can emit false positives (a preceding
/// candidate lowered dist[v] first) but never false negatives (dist only
/// decreases); the caller must re-test each candidate — including the
/// done-set check, which is skipped here entirely — before updating.
std::size_t filter_candidates(const double* cap, const double* cost,
                              const std::uint32_t* to, const double* pot,
                              const double* dist, double base, double eps,
                              std::uint32_t lo, std::uint32_t hi,
                              std::uint32_t* out);

/// Johnson potential update: pot[v] += min(dist[v], dsink) for v < n.
/// min/add only — bit-identical to the scalar loop.
void potential_update(double* pot, const double* dist, double dsink,
                      std::size_t n);

/// Position in `frontier[0..f)` of the node with the smallest dist,
/// first occurrence on exact ties — the same element the scalar
/// strict-< scan selects, so settle order (and therefore the augmenting
/// tree) is bit-identical across modes. f must be > 0.
std::size_t frontier_argmin(const std::uint32_t* frontier, std::size_t f,
                            const double* dist);

}  // namespace mecsc::flow::avx2

#endif  // MECSC_SIMD_AVX2

#endif  // MECSC_FLOW_SIMD_RELAX_H
