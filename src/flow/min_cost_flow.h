#ifndef MECSC_FLOW_MIN_COST_FLOW_H
#define MECSC_FLOW_MIN_COST_FLOW_H

#include <cstddef>
#include <vector>

namespace mecsc::flow {

/// Result of a min-cost-flow computation.
struct FlowResult {
  double flow = 0.0;  // total flow shipped from source to sink
  double cost = 0.0;  // sum over edges of flow * cost
  std::size_t augmentations = 0;  // shortest-path passes performed
};

/// Minimum-cost flow via successive shortest paths with Johnson
/// potentials (Dijkstra on reduced costs).
///
/// Real-valued capacities and non-negative real costs; this is exactly
/// what the transportation relaxation of the paper's caching LP needs
/// (request demand -> base-station capacity arcs weighted by ρ_l * θ_i).
/// With non-negative arc costs every shortest-path pass is Dijkstra, so
/// the solver is O(F · E log V) where F is the number of augmenting
/// passes (≤ number of distinct saturation events for real capacities).
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes);

  /// Adds a directed edge; returns an edge id usable with `edge_flow`.
  /// Capacity must be >= 0 and cost must be >= 0 (required by Dijkstra;
  /// the caching reduction only produces non-negative delays).
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity,
                       double cost);

  std::size_t num_nodes() const noexcept { return graph_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size() / 2; }

  /// Sends up to `max_flow` units from `source` to `sink` at minimum
  /// cost. May be called once per instance. Returns the flow actually
  /// shipped (less than `max_flow` if the network saturates) and its
  /// cost.
  FlowResult solve(std::size_t source, std::size_t sink, double max_flow);

  /// Flow on the edge returned by `add_edge` (valid after `solve`).
  double edge_flow(std::size_t edge_id) const;

  /// Node-count threshold below which each shortest-path pass uses a
  /// dense O(V²+E) scan instead of a binary heap.
  static constexpr std::size_t kDenseThreshold = 1500;

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;     // index of the reverse edge in edges_
    double capacity;     // residual capacity
    double cost;
  };

  // Edges are stored in one array; graph_[v] holds indices into edges_.
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> graph_;
  std::vector<double> initial_capacity_;  // per forward edge id
  std::vector<double> potential_;         // Johnson potentials (during solve)
};

}  // namespace mecsc::flow

#endif  // MECSC_FLOW_MIN_COST_FLOW_H
