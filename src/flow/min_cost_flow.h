#ifndef MECSC_FLOW_MIN_COST_FLOW_H
#define MECSC_FLOW_MIN_COST_FLOW_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mecsc::flow {

/// Result of a min-cost-flow computation.
struct FlowResult {
  double flow = 0.0;  // total flow shipped from source to sink
  double cost = 0.0;  // sum over edges of flow * cost
  std::size_t augmentations = 0;  // shortest-path passes performed
};

/// Minimum-cost flow via successive shortest paths with Johnson
/// potentials (Dijkstra on reduced costs).
///
/// Real-valued capacities and non-negative real costs; this is exactly
/// what the transportation relaxation of the paper's caching LP needs
/// (request demand -> base-station capacity arcs weighted by ρ_l * θ_i).
/// With non-negative arc costs every shortest-path pass is Dijkstra, so
/// the solver is O(F · E log V) where F is the number of augmenting
/// passes (≤ number of distinct saturation events for real capacities).
///
/// Storage is flat and cache-friendly: arcs live in parallel
/// struct-of-arrays buffers (forward arc 2·id, its reverse partner
/// 2·id+1) behind a CSR adjacency index, and every Dijkstra scratch
/// vector is a reusable member — a `reset()` + `solve()` cycle performs
/// no allocations, which is what lets `core::FractionalSolver` re-price
/// and re-solve the same network several times per slot for free.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes);

  /// Adds a directed edge; returns an edge id usable with `edge_flow`.
  /// Capacity must be >= 0 and cost must be >= 0 (required by Dijkstra;
  /// the caching reduction only produces non-negative delays).
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity,
                       double cost);

  /// Replaces the cost of an existing edge (capacity and endpoints are
  /// kept). Only valid between solves (together with `reset`).
  void set_cost(std::size_t edge_id, double cost);

  /// Restores every edge's residual capacity to its initial value so the
  /// network can be solved again (typically after `set_cost` updates).
  void reset();

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return arc_to_.size() / 2; }

  /// Sends up to `max_flow` units from `source` to `sink` at minimum
  /// cost. Returns the flow actually shipped (less than `max_flow` if
  /// the network saturates) and its cost. May be called again after
  /// `reset()`.
  FlowResult solve(std::size_t source, std::size_t sink, double max_flow);

  /// Flow on the edge returned by `add_edge` (valid after `solve`).
  double edge_flow(std::size_t edge_id) const;

  /// Johnson potential of a node after `solve` — a feasible dual: every
  /// residual arc (u, v) satisfies cost + potential(u) - potential(v)
  /// >= 0 at termination. `core::FractionalSolver` uses these duals to
  /// certify that a solution computed on a pruned arc set is optimal for
  /// the full network.
  double potential(std::size_t node) const;

  /// Drops every edge (node count is kept) so a new network can be
  /// built. Buffers keep their capacity, so rebuild-after-clear does not
  /// reallocate.
  void clear_edges();

  /// Node-count threshold below which each shortest-path pass uses a
  /// frontier-scan selection instead of a binary heap. The pruned
  /// working-set graphs `core::FractionalSolver` builds have ~15 arcs
  /// per node, where the heap wins from ~64 nodes up (measured on the
  /// fig-3 workload); tiny unit-test graphs skip the heap overhead.
  static constexpr std::size_t kDenseThreshold = 256;

 private:
  void build_adjacency();

  /// One Dijkstra pass on reduced costs from `start`, early-exiting once
  /// `sink` settles (returns false if it never does). `forbid` (pass
  /// num_nodes_ for none) is pre-settled so the search never crosses it —
  /// the per-source fast path uses this to keep the bookkeeping
  /// super-source, whose outgoing arcs carry negative reduced costs, out
  /// of the search space.
  bool dijkstra(std::size_t start, std::size_t sink, std::size_t forbid,
                bool dense, bool use_simd, std::size_t& arcs_scanned);

  /// Augments along prev_arc_'s path sink→…→start by at most `limit`;
  /// returns the amount pushed (0 on numerical stall).
  double augment(std::size_t start, std::size_t sink, double limit);

  std::size_t num_nodes_ = 0;

  // Arc storage (struct-of-arrays): arc 2*id is the forward direction of
  // edge `id`, arc 2*id+1 its residual reverse (cost negated).
  std::vector<std::uint32_t> arc_to_;
  std::vector<std::uint32_t> arc_from_;
  std::vector<double> arc_cap_;
  std::vector<double> arc_cost_;
  std::vector<double> initial_capacity_;  // per forward edge id

  // CSR adjacency over arcs, rebuilt lazily when edges were added. The
  // arc fields themselves are mirrored into CSR order (csr_*), so the
  // Dijkstra inner loop walks one contiguous block per node with no
  // adj_arc_ indirection — solve() syncs the mirror from the arc arrays
  // on entry and writes residual capacities back on exit. The stable
  // counting sort keeps each node's arcs in the same relative order the
  // old indirect iteration produced, so results are bit-identical.
  std::vector<std::uint32_t> adj_head_;  // num_nodes_+1 offsets
  std::vector<std::uint32_t> adj_arc_;   // CSR slot -> arc index
  std::vector<std::uint32_t> arc_pos_;   // arc index -> CSR slot
  std::vector<std::uint32_t> csr_to_;
  std::vector<std::uint32_t> csr_partner_;  // CSR slot of the reverse arc
  std::vector<double> csr_cap_;
  std::vector<double> csr_cost_;
  bool adjacency_dirty_ = true;

  // Reusable per-solve scratch (sized on first solve, then reused).
  std::vector<double> dist_;
  std::vector<double> potential_;  // Johnson potentials
  std::vector<std::uint32_t> prev_arc_;  // CSR slot of the tree arc into v
  std::vector<std::uint32_t> frontier_;  // discovered, not yet settled
  std::vector<std::uint32_t> cand_;      // SIMD relax-filter candidates
  std::vector<char> done_;
};

}  // namespace mecsc::flow

#endif  // MECSC_FLOW_MIN_COST_FLOW_H
