#include "flow/min_cost_flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.h"

namespace mecsc::flow {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MinCostFlow::MinCostFlow(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t MinCostFlow::add_edge(std::size_t from, std::size_t to,
                                  double capacity, double cost) {
  MECSC_CHECK_MSG(from < graph_.size() && to < graph_.size(),
                  "edge endpoint out of range");
  MECSC_CHECK_MSG(capacity >= 0.0, "negative capacity");
  MECSC_CHECK_MSG(cost >= 0.0, "negative cost (Dijkstra requires cost >= 0)");
  std::size_t id = initial_capacity_.size();
  graph_[from].push_back(edges_.size());
  edges_.push_back(Edge{to, edges_.size() + 1, capacity, cost});
  graph_[to].push_back(edges_.size());
  edges_.push_back(Edge{from, edges_.size() - 1, 0.0, -cost});
  initial_capacity_.push_back(capacity);
  return id;
}

FlowResult MinCostFlow::solve(std::size_t source, std::size_t sink,
                              double max_flow) {
  MECSC_CHECK(source < graph_.size() && sink < graph_.size());
  MECSC_CHECK(source != sink);

  const std::size_t n = graph_.size();
  potential_.assign(n, 0.0);
  std::vector<double> dist(n);
  std::vector<std::size_t> prev_edge(n);
  std::vector<bool> done(n);

  FlowResult result;
  double remaining = max_flow;

  // Small node counts (the caching reduction has |R| + |BS| + 2 nodes)
  // favour a dense O(V² + E) Dijkstra over a binary heap; the heap path
  // remains for genuinely sparse/large graphs.
  const bool dense = n <= kDenseThreshold;

  while (remaining > kEps) {
    // Dijkstra on reduced costs cost + pot[u] - pot[v] (non-negative).
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(done.begin(), done.end(), false);
    dist[source] = 0.0;
    if (dense) {
      for (;;) {
        std::size_t u = n;
        double best = kInf;
        for (std::size_t v = 0; v < n; ++v) {
          if (!done[v] && dist[v] < best) {
            best = dist[v];
            u = v;
          }
        }
        if (u == n) break;
        done[u] = true;
        if (u == sink) break;  // settled: shorter paths impossible
        for (std::size_t ei : graph_[u]) {
          const Edge& e = edges_[ei];
          if (e.capacity <= kEps || done[e.to]) continue;
          double nd = best + e.cost + potential_[u] - potential_[e.to];
          if (nd < dist[e.to] - kEps) {
            dist[e.to] = nd;
            prev_edge[e.to] = ei;
          }
        }
      }
    } else {
      using Item = std::pair<double, std::size_t>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
      pq.emplace(0.0, source);
      while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (done[u]) continue;
        done[u] = true;
        if (u == sink) break;
        for (std::size_t ei : graph_[u]) {
          const Edge& e = edges_[ei];
          if (e.capacity <= kEps || done[e.to]) continue;
          double nd = d + e.cost + potential_[u] - potential_[e.to];
          if (nd < dist[e.to] - kEps) {
            dist[e.to] = nd;
            prev_edge[e.to] = ei;
            pq.emplace(nd, e.to);
          }
        }
      }
    }
    if (!done[sink]) break;  // no augmenting path: network saturated

    // Truncated-Dijkstra potential update (Johnson): nodes not settled
    // before the sink get the sink's distance, which keeps all reduced
    // costs non-negative.
    for (std::size_t v = 0; v < n; ++v) {
      potential_[v] += std::min(dist[v], dist[sink]);
    }

    // Single-path augmentation along the sink's shortest-path tree
    // branch. (A Dinic-style blocking-flow phase was tried and reverted:
    // arc costs here are continuous reals, so shortest-path ties never
    // happen and the per-phase admissible-graph BFS only added O(E)
    // work. With the early sink exit above, each phase is cheap.)
    double push = remaining;
    for (std::size_t v = sink; v != source;) {
      const Edge& e = edges_[prev_edge[v]];
      push = std::min(push, e.capacity);
      v = edges_[e.rev].to;
    }
    if (push <= kEps) break;  // numerical stall: treat as saturated
    for (std::size_t v = sink; v != source;) {
      Edge& e = edges_[prev_edge[v]];
      e.capacity -= push;
      edges_[e.rev].capacity += push;
      v = edges_[e.rev].to;
    }
    result.flow += push;
    ++result.augmentations;
    remaining -= push;
  }
  // Exact cost from final edge flows.
  for (std::size_t id = 0; id < initial_capacity_.size(); ++id) {
    result.cost += edge_flow(id) * edges_[2 * id].cost;
  }
  return result;
}

double MinCostFlow::edge_flow(std::size_t edge_id) const {
  MECSC_CHECK(edge_id < initial_capacity_.size());
  // Forward edge 2*id has residual capacity = initial - flow.
  const Edge& fwd = edges_[2 * edge_id];
  double f = initial_capacity_[edge_id] - fwd.capacity;
  return f < 0.0 ? 0.0 : f;
}

}  // namespace mecsc::flow
