#include "flow/min_cost_flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.h"
#include "common/simd.h"
#include "flow/simd_relax.h"
#include "obs/metrics.h"

namespace mecsc::flow {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MinCostFlow::MinCostFlow(std::size_t num_nodes) : num_nodes_(num_nodes) {}

std::size_t MinCostFlow::add_edge(std::size_t from, std::size_t to,
                                  double capacity, double cost) {
  MECSC_CHECK_MSG(from < num_nodes_ && to < num_nodes_,
                  "edge endpoint out of range");
  MECSC_CHECK_MSG(capacity >= 0.0, "negative capacity");
  MECSC_CHECK_MSG(cost >= 0.0, "negative cost (Dijkstra requires cost >= 0)");
  std::size_t id = initial_capacity_.size();
  arc_from_.push_back(static_cast<std::uint32_t>(from));
  arc_to_.push_back(static_cast<std::uint32_t>(to));
  arc_cap_.push_back(capacity);
  arc_cost_.push_back(cost);
  arc_from_.push_back(static_cast<std::uint32_t>(to));
  arc_to_.push_back(static_cast<std::uint32_t>(from));
  arc_cap_.push_back(0.0);
  arc_cost_.push_back(-cost);
  initial_capacity_.push_back(capacity);
  adjacency_dirty_ = true;
  return id;
}

void MinCostFlow::set_cost(std::size_t edge_id, double cost) {
  MECSC_CHECK(edge_id < initial_capacity_.size());
  MECSC_CHECK_MSG(cost >= 0.0, "negative cost (Dijkstra requires cost >= 0)");
  arc_cost_[2 * edge_id] = cost;
  arc_cost_[2 * edge_id + 1] = -cost;
}

void MinCostFlow::reset() {
  for (std::size_t id = 0; id < initial_capacity_.size(); ++id) {
    arc_cap_[2 * id] = initial_capacity_[id];
    arc_cap_[2 * id + 1] = 0.0;
  }
}

void MinCostFlow::build_adjacency() {
  const std::size_t n = num_nodes_;
  const std::size_t num_arcs = arc_from_.size();
  adj_head_.assign(n + 1, 0);
  for (std::uint32_t from : arc_from_) ++adj_head_[from + 1];
  for (std::size_t v = 0; v < n; ++v) adj_head_[v + 1] += adj_head_[v];
  adj_arc_.resize(num_arcs);
  std::vector<std::uint32_t> fill(adj_head_.begin(), adj_head_.end() - 1);
  for (std::size_t a = 0; a < num_arcs; ++a) {
    adj_arc_[fill[arc_from_[a]]++] = static_cast<std::uint32_t>(a);
  }
  // CSR-order mirror of the arc fields (capacities/costs are synced
  // again at every solve; the structural fields only change here).
  arc_pos_.resize(num_arcs);
  for (std::size_t slot = 0; slot < num_arcs; ++slot) {
    arc_pos_[adj_arc_[slot]] = static_cast<std::uint32_t>(slot);
  }
  csr_to_.resize(num_arcs);
  csr_partner_.resize(num_arcs);
  csr_cap_.resize(num_arcs);
  csr_cost_.resize(num_arcs);
  cand_.resize(num_arcs);
  for (std::size_t slot = 0; slot < num_arcs; ++slot) {
    const std::uint32_t a = adj_arc_[slot];
    csr_to_[slot] = arc_to_[a];
    csr_partner_[slot] = arc_pos_[a ^ 1u];
  }
  adjacency_dirty_ = false;
}

bool MinCostFlow::dijkstra(std::size_t start, std::size_t sink,
                           std::size_t forbid, bool dense, bool use_simd,
                           std::size_t& arcs_scanned) {
  const double* cap = csr_cap_.data();
  const double* cost = csr_cost_.data();
  const std::uint32_t* to = csr_to_.data();
  const double* pot = potential_.data();
  double* dist = dist_.data();

  // Dijkstra on reduced costs cost + pot[u] - pot[v] (non-negative).
  std::fill(dist_.begin(), dist_.end(), kInf);
  std::fill(done_.begin(), done_.end(), 0);
  if (forbid < num_nodes_) done_[forbid] = 1;
  dist[start] = 0.0;
  (void)use_simd;
  if (dense) {
    // Frontier scan: only nodes already discovered (finite dist) are
    // candidates, kept in a compact swap-remove array.
    frontier_.clear();
    frontier_.push_back(static_cast<std::uint32_t>(start));
    while (!frontier_.empty()) {
      std::size_t best_at;
#if defined(MECSC_SIMD_AVX2)
      if (use_simd) {
        best_at =
            avx2::frontier_argmin(frontier_.data(), frontier_.size(), dist);
      } else
#endif
      {
        best_at = 0;
        double best = dist[frontier_[0]];
        for (std::size_t s = 1; s < frontier_.size(); ++s) {
          double d = dist[frontier_[s]];
          if (d < best) {
            best = d;
            best_at = s;
          }
        }
      }
      std::uint32_t u = frontier_[best_at];
      frontier_[best_at] = frontier_.back();
      frontier_.pop_back();
      done_[u] = 1;
      if (u == sink) return true;  // settled: shorter paths impossible
      double base = dist[u] + pot[u];
      const std::uint32_t lo = adj_head_[u], hi = adj_head_[u + 1];
      arcs_scanned += hi - lo;
#if defined(MECSC_SIMD_AVX2)
      if (use_simd) {
        // Vector filter, then an exact scalar re-test per candidate in
        // slot order (the filter skips the done-set and may race a
        // same-block dist update; see simd_relax.h).
        const std::size_t m = avx2::filter_candidates(
            cap, cost, to, pot, dist, base, kEps, lo, hi, cand_.data());
        for (std::size_t i = 0; i < m; ++i) {
          const std::uint32_t at = cand_[i];
          std::uint32_t v = to[at];
          if (done_[v]) continue;
          double nd = base + cost[at] - pot[v];
          if (nd < dist[v] - kEps) {
            if (dist[v] == kInf) frontier_.push_back(v);
            dist[v] = nd;
            prev_arc_[v] = at;
          }
        }
        continue;
      }
#endif
      for (std::uint32_t at = lo; at < hi; ++at) {
        if (cap[at] <= kEps) continue;
        std::uint32_t v = to[at];
        if (done_[v]) continue;
        double nd = base + cost[at] - pot[v];
        if (nd < dist[v] - kEps) {
          if (dist[v] == kInf) frontier_.push_back(v);
          dist[v] = nd;
          prev_arc_[v] = at;
        }
      }
    }
  } else {
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, start);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (done_[u]) continue;
      done_[u] = 1;
      if (u == sink) return true;
      double base = d + pot[u];
      const std::uint32_t lo = adj_head_[u], hi = adj_head_[u + 1];
      arcs_scanned += hi - lo;
#if defined(MECSC_SIMD_AVX2)
      if (use_simd) {
        const std::size_t m = avx2::filter_candidates(
            cap, cost, to, pot, dist, base, kEps, lo, hi, cand_.data());
        for (std::size_t i = 0; i < m; ++i) {
          const std::uint32_t at = cand_[i];
          std::uint32_t v = to[at];
          if (done_[v]) continue;
          double nd = base + cost[at] - pot[v];
          if (nd < dist[v] - kEps) {
            dist[v] = nd;
            prev_arc_[v] = at;
            pq.emplace(nd, v);
          }
        }
        continue;
      }
#endif
      for (std::uint32_t at = lo; at < hi; ++at) {
        if (cap[at] <= kEps) continue;
        std::uint32_t v = to[at];
        if (done_[v]) continue;
        double nd = base + cost[at] - pot[v];
        if (nd < dist[v] - kEps) {
          dist[v] = nd;
          prev_arc_[v] = at;
          pq.emplace(nd, v);
        }
      }
    }
  }
  return false;  // sink unreachable in the residual network
}

double MinCostFlow::augment(std::size_t start, std::size_t sink, double limit) {
  // Single-path augmentation along the sink's shortest-path tree branch.
  // (A Dinic-style blocking-flow phase was tried and reverted: arc costs
  // here are continuous reals, so shortest-path ties never happen and the
  // per-phase admissible-graph BFS only added O(E) work. With the early
  // sink exit in dijkstra(), each pass is cheap.)
  double push = limit;
  for (std::size_t v = sink; v != start;) {
    std::uint32_t at = prev_arc_[v];
    push = std::min(push, csr_cap_[at]);
    v = csr_to_[csr_partner_[at]];
  }
  if (push <= kEps) return 0.0;  // numerical stall: treat as saturated
  for (std::size_t v = sink; v != start;) {
    std::uint32_t at = prev_arc_[v];
    csr_cap_[at] -= push;
    csr_cap_[csr_partner_[at]] += push;
    v = csr_to_[csr_partner_[at]];
  }
  return push;
}

FlowResult MinCostFlow::solve(std::size_t source, std::size_t sink,
                              double max_flow) {
  MECSC_CHECK(source < num_nodes_ && sink < num_nodes_);
  MECSC_CHECK(source != sink);
  if (adjacency_dirty_) build_adjacency();

  // Sync the CSR mirror: set_cost/reset edit the arc-order arrays
  // between solves. O(E) copies — noise next to the Dijkstra passes.
  for (std::size_t slot = 0; slot < adj_arc_.size(); ++slot) {
    csr_cap_[slot] = arc_cap_[adj_arc_[slot]];
    csr_cost_[slot] = arc_cost_[adj_arc_[slot]];
  }

  const std::size_t n = num_nodes_;
  potential_.assign(n, 0.0);
  dist_.resize(n);
  prev_arc_.resize(n);
  done_.resize(n);
  frontier_.clear();

  FlowResult result;
  double remaining = max_flow;
  std::size_t arcs_scanned = 0;  // residual arcs relaxed across all passes

  // Small node counts (the caching reduction has |R| + |BS| + 2 nodes)
  // favour scanning a compact frontier of discovered nodes over a binary
  // heap; the heap path remains for genuinely sparse/large graphs.
  const bool dense = n <= kDenseThreshold;
#if defined(MECSC_SIMD_AVX2)
  const bool simd = common::simd::active();
#else
  const bool simd = false;
#endif

  // --- Per-source fast path -------------------------------------------
  // When every arc out of `source` has cost 0 and max_flow covers the
  // whole supply (exactly the transportation reduction FractionalSolver
  // builds), the supply can be routed one source arc at a time: each
  // Dijkstra then starts at a single column and typically settles a
  // handful of nodes before the sink, instead of re-exploring the whole
  // graph from the super-source on every augmentation. Exactness: each
  // augmentation still follows a shortest path under reduced costs (the
  // feasibility invariant never references where the search starts), and
  // at termination every source arc is saturated, so no residual cycle
  // can cross the excluded super-source — the flow is the same min-cost
  // optimum, merely reached in a different augmentation order.
  const std::uint32_t src_lo = adj_head_[source], src_hi = adj_head_[source + 1];
  double supply = 0.0;
  bool fast = true;
  for (std::uint32_t slot = src_lo; slot < src_hi; ++slot) {
    if (csr_cap_[slot] <= kEps) continue;
    if (csr_cost_[slot] != 0.0 || csr_to_[slot] == source) {
      fast = false;
      break;
    }
    supply += csr_cap_[slot];
  }
  fast = fast && max_flow >= supply - kEps;

  bool use_classic = !fast;
  if (fast) {
    for (std::uint32_t slot = src_lo; slot < src_hi && remaining > kEps;
         ++slot) {
      const std::size_t c = csr_to_[slot];
      if (c == sink) {  // degenerate direct source→sink arc
        double push = std::min(csr_cap_[slot], remaining);
        if (push <= kEps) continue;
        csr_cap_[slot] -= push;
        csr_cap_[csr_partner_[slot]] += push;
        result.flow += push;
        ++result.augmentations;
        remaining -= push;
        continue;
      }
      while (csr_cap_[slot] > kEps && remaining > kEps) {
        if (!dijkstra(c, sink, source, dense, simd, arcs_scanned)) break;
        double dsink = dist_[sink];
#if defined(MECSC_SIMD_AVX2)
        if (simd) {
          avx2::potential_update(potential_.data(), dist_.data(), dsink, n);
        } else
#endif
        {
          for (std::size_t v = 0; v < n; ++v) {
            potential_[v] += std::min(dist_[v], dsink);
          }
        }
        double push =
            augment(c, sink, std::min(csr_cap_[slot], remaining));
        if (push <= 0.0) break;
        csr_cap_[slot] -= push;  // the implicit source→column hop
        csr_cap_[csr_partner_[slot]] += push;
        result.flow += push;
        ++result.augmentations;
        remaining -= push;
      }
    }
    // A column whose supply could not be fully routed means capacity
    // shortfall. The per-source order is not guaranteed maximal (a later
    // column's re-routing can reopen an earlier one), so rerun the
    // classic super-source algorithm for exact parity with degraded-mode
    // behavior.
    if (remaining > kEps) {
      for (std::uint32_t slot = src_lo; slot < src_hi; ++slot) {
        if (csr_cap_[slot] > kEps && csr_to_[slot] != sink) {
          use_classic = true;
          break;
        }
      }
      if (use_classic) {
        for (std::size_t slot = 0; slot < adj_arc_.size(); ++slot) {
          csr_cap_[slot] = arc_cap_[adj_arc_[slot]];
        }
        potential_.assign(n, 0.0);
        result = FlowResult{};
        remaining = max_flow;
        arcs_scanned = 0;
        MECSC_COUNT("mcf.fast_path_fallbacks", 1.0);
      }
    }
  }

  if (use_classic) {
    while (remaining > kEps) {
      if (!dijkstra(source, sink, num_nodes_, dense, simd, arcs_scanned)) {
        break;  // no augmenting path: network saturated
      }
      // Truncated-Dijkstra potential update (Johnson): nodes not settled
      // before the sink get the sink's distance, which keeps all reduced
      // costs non-negative.
      double dsink = dist_[sink];
#if defined(MECSC_SIMD_AVX2)
      if (simd) {
        avx2::potential_update(potential_.data(), dist_.data(), dsink, n);
      } else
#endif
      {
        for (std::size_t v = 0; v < n; ++v) {
          potential_[v] += std::min(dist_[v], dsink);
        }
      }
      double push = augment(source, sink, remaining);
      if (push <= 0.0) break;
      result.flow += push;
      ++result.augmentations;
      remaining -= push;
    }
  }
  // Publish residual capacities back to arc order (edge_flow reads them).
  for (std::size_t slot = 0; slot < adj_arc_.size(); ++slot) {
    arc_cap_[adj_arc_[slot]] = csr_cap_[slot];
  }
  // Exact cost from final edge flows.
  for (std::size_t id = 0; id < initial_capacity_.size(); ++id) {
    result.cost += edge_flow(id) * arc_cost_[2 * id];
  }
  MECSC_COUNT("mcf.solves", 1.0);
  MECSC_COUNT("mcf.augmentations", static_cast<double>(result.augmentations));
  MECSC_COUNT("mcf.arcs_scanned", static_cast<double>(arcs_scanned));
  return result;
}

double MinCostFlow::edge_flow(std::size_t edge_id) const {
  MECSC_CHECK(edge_id < initial_capacity_.size());
  // Forward arc 2*id has residual capacity = initial - flow.
  double f = initial_capacity_[edge_id] - arc_cap_[2 * edge_id];
  return f < 0.0 ? 0.0 : f;
}

double MinCostFlow::potential(std::size_t node) const {
  MECSC_CHECK(node < potential_.size());
  return potential_[node];
}

void MinCostFlow::clear_edges() {
  arc_to_.clear();
  arc_from_.clear();
  arc_cap_.clear();
  arc_cost_.clear();
  initial_capacity_.clear();
  adjacency_dirty_ = true;
}

}  // namespace mecsc::flow
