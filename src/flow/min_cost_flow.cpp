#include "flow/min_cost_flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.h"
#include "obs/metrics.h"

namespace mecsc::flow {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MinCostFlow::MinCostFlow(std::size_t num_nodes) : num_nodes_(num_nodes) {}

std::size_t MinCostFlow::add_edge(std::size_t from, std::size_t to,
                                  double capacity, double cost) {
  MECSC_CHECK_MSG(from < num_nodes_ && to < num_nodes_,
                  "edge endpoint out of range");
  MECSC_CHECK_MSG(capacity >= 0.0, "negative capacity");
  MECSC_CHECK_MSG(cost >= 0.0, "negative cost (Dijkstra requires cost >= 0)");
  std::size_t id = initial_capacity_.size();
  arc_from_.push_back(static_cast<std::uint32_t>(from));
  arc_to_.push_back(static_cast<std::uint32_t>(to));
  arc_cap_.push_back(capacity);
  arc_cost_.push_back(cost);
  arc_from_.push_back(static_cast<std::uint32_t>(to));
  arc_to_.push_back(static_cast<std::uint32_t>(from));
  arc_cap_.push_back(0.0);
  arc_cost_.push_back(-cost);
  initial_capacity_.push_back(capacity);
  adjacency_dirty_ = true;
  return id;
}

void MinCostFlow::set_cost(std::size_t edge_id, double cost) {
  MECSC_CHECK(edge_id < initial_capacity_.size());
  MECSC_CHECK_MSG(cost >= 0.0, "negative cost (Dijkstra requires cost >= 0)");
  arc_cost_[2 * edge_id] = cost;
  arc_cost_[2 * edge_id + 1] = -cost;
}

void MinCostFlow::reset() {
  for (std::size_t id = 0; id < initial_capacity_.size(); ++id) {
    arc_cap_[2 * id] = initial_capacity_[id];
    arc_cap_[2 * id + 1] = 0.0;
  }
}

void MinCostFlow::build_adjacency() {
  const std::size_t n = num_nodes_;
  adj_head_.assign(n + 1, 0);
  for (std::uint32_t from : arc_from_) ++adj_head_[from + 1];
  for (std::size_t v = 0; v < n; ++v) adj_head_[v + 1] += adj_head_[v];
  adj_arc_.resize(arc_from_.size());
  std::vector<std::uint32_t> fill(adj_head_.begin(), adj_head_.end() - 1);
  for (std::size_t a = 0; a < arc_from_.size(); ++a) {
    adj_arc_[fill[arc_from_[a]]++] = static_cast<std::uint32_t>(a);
  }
  adjacency_dirty_ = false;
}

FlowResult MinCostFlow::solve(std::size_t source, std::size_t sink,
                              double max_flow) {
  MECSC_CHECK(source < num_nodes_ && sink < num_nodes_);
  MECSC_CHECK(source != sink);
  if (adjacency_dirty_) build_adjacency();

  const std::size_t n = num_nodes_;
  potential_.assign(n, 0.0);
  dist_.resize(n);
  prev_arc_.resize(n);
  done_.resize(n);
  frontier_.clear();

  FlowResult result;
  double remaining = max_flow;
  std::size_t arcs_scanned = 0;  // residual arcs relaxed across all passes

  // Small node counts (the caching reduction has |R| + |BS| + 2 nodes)
  // favour scanning a compact frontier of discovered nodes over a binary
  // heap; the heap path remains for genuinely sparse/large graphs.
  const bool dense = n <= kDenseThreshold;

  const double* cap = arc_cap_.data();
  const double* cost = arc_cost_.data();
  const std::uint32_t* to = arc_to_.data();
  const double* pot = potential_.data();
  double* dist = dist_.data();

  while (remaining > kEps) {
    // Dijkstra on reduced costs cost + pot[u] - pot[v] (non-negative).
    std::fill(dist_.begin(), dist_.end(), kInf);
    std::fill(done_.begin(), done_.end(), 0);
    dist[source] = 0.0;
    bool sink_settled = false;
    if (dense) {
      // Frontier scan: only nodes already discovered (finite dist) are
      // candidates, kept in a compact swap-remove array.
      frontier_.clear();
      frontier_.push_back(static_cast<std::uint32_t>(source));
      while (!frontier_.empty()) {
        std::size_t best_at = 0;
        double best = dist[frontier_[0]];
        for (std::size_t s = 1; s < frontier_.size(); ++s) {
          double d = dist[frontier_[s]];
          if (d < best) {
            best = d;
            best_at = s;
          }
        }
        std::uint32_t u = frontier_[best_at];
        frontier_[best_at] = frontier_.back();
        frontier_.pop_back();
        done_[u] = 1;
        if (u == sink) {  // settled: shorter paths impossible
          sink_settled = true;
          break;
        }
        double base = best + pot[u];
        arcs_scanned += adj_head_[u + 1] - adj_head_[u];
        for (std::uint32_t at = adj_head_[u], end = adj_head_[u + 1]; at < end;
             ++at) {
          std::uint32_t a = adj_arc_[at];
          if (cap[a] <= kEps) continue;
          std::uint32_t v = to[a];
          if (done_[v]) continue;
          double nd = base + cost[a] - pot[v];
          if (nd < dist[v] - kEps) {
            if (dist[v] == kInf) frontier_.push_back(v);
            dist[v] = nd;
            prev_arc_[v] = a;
          }
        }
      }
    } else {
      using Item = std::pair<double, std::size_t>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
      pq.emplace(0.0, source);
      while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (done_[u]) continue;
        done_[u] = 1;
        if (u == sink) {
          sink_settled = true;
          break;
        }
        double base = d + pot[u];
        arcs_scanned += adj_head_[u + 1] - adj_head_[u];
        for (std::uint32_t at = adj_head_[u], end = adj_head_[u + 1]; at < end;
             ++at) {
          std::uint32_t a = adj_arc_[at];
          if (cap[a] <= kEps) continue;
          std::uint32_t v = to[a];
          if (done_[v]) continue;
          double nd = base + cost[a] - pot[v];
          if (nd < dist[v] - kEps) {
            dist[v] = nd;
            prev_arc_[v] = a;
            pq.emplace(nd, v);
          }
        }
      }
    }
    if (!sink_settled) break;  // no augmenting path: network saturated

    // Truncated-Dijkstra potential update (Johnson): nodes not settled
    // before the sink get the sink's distance, which keeps all reduced
    // costs non-negative.
    double dsink = dist[sink];
    for (std::size_t v = 0; v < n; ++v) {
      potential_[v] += std::min(dist[v], dsink);
    }

    // Single-path augmentation along the sink's shortest-path tree
    // branch. (A Dinic-style blocking-flow phase was tried and reverted:
    // arc costs here are continuous reals, so shortest-path ties never
    // happen and the per-phase admissible-graph BFS only added O(E)
    // work. With the early sink exit above, each phase is cheap.)
    double push = remaining;
    for (std::size_t v = sink; v != source;) {
      std::uint32_t a = prev_arc_[v];
      push = std::min(push, arc_cap_[a]);
      v = arc_to_[a ^ 1u];
    }
    if (push <= kEps) break;  // numerical stall: treat as saturated
    for (std::size_t v = sink; v != source;) {
      std::uint32_t a = prev_arc_[v];
      arc_cap_[a] -= push;
      arc_cap_[a ^ 1u] += push;
      v = arc_to_[a ^ 1u];
    }
    result.flow += push;
    ++result.augmentations;
    remaining -= push;
  }
  // Exact cost from final edge flows.
  for (std::size_t id = 0; id < initial_capacity_.size(); ++id) {
    result.cost += edge_flow(id) * arc_cost_[2 * id];
  }
  MECSC_COUNT("mcf.solves", 1.0);
  MECSC_COUNT("mcf.augmentations", static_cast<double>(result.augmentations));
  MECSC_COUNT("mcf.arcs_scanned", static_cast<double>(arcs_scanned));
  return result;
}

double MinCostFlow::edge_flow(std::size_t edge_id) const {
  MECSC_CHECK(edge_id < initial_capacity_.size());
  // Forward arc 2*id has residual capacity = initial - flow.
  double f = initial_capacity_[edge_id] - arc_cap_[2 * edge_id];
  return f < 0.0 ? 0.0 : f;
}

double MinCostFlow::potential(std::size_t node) const {
  MECSC_CHECK(node < potential_.size());
  return potential_[node];
}

void MinCostFlow::clear_edges() {
  arc_to_.clear();
  arc_from_.clear();
  arc_cap_.clear();
  arc_cost_.clear();
  initial_capacity_.clear();
  adjacency_dirty_ = true;
}

}  // namespace mecsc::flow
