#include "lp/model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsc::lp {

std::size_t Model::add_variable(double cost, std::string name) {
  costs_.push_back(cost);
  if (name.empty()) name = "x" + std::to_string(costs_.size() - 1);
  var_names_.push_back(std::move(name));
  return costs_.size() - 1;
}

std::size_t Model::add_constraint(Constraint c) {
  for (auto& [var, coef] : c.terms) {
    MECSC_CHECK_MSG(var < costs_.size(), "constraint references unknown variable");
    (void)coef;
  }
  // Merge duplicate variable ids so the solver sees one column entry each.
  std::sort(c.terms.begin(), c.terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::size_t, double>> merged;
  for (const auto& [var, coef] : c.terms) {
    if (!merged.empty() && merged.back().first == var) {
      merged.back().second += coef;
    } else {
      merged.emplace_back(var, coef);
    }
  }
  c.terms = std::move(merged);
  constraints_.push_back(std::move(c));
  return constraints_.size() - 1;
}

double Model::objective_value(const std::vector<double>& x) const {
  MECSC_CHECK(x.size() == costs_.size());
  double v = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) v += costs_[i] * x[i];
  return v;
}

double Model::max_violation(const std::vector<double>& x) const {
  MECSC_CHECK(x.size() == costs_.size());
  double worst = 0.0;
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coef] : c.terms) lhs += coef * x[var];
    double v = 0.0;
    switch (c.relation) {
      case Relation::kLessEqual: v = lhs - c.rhs; break;
      case Relation::kGreaterEqual: v = c.rhs - lhs; break;
      case Relation::kEqual: v = std::abs(lhs - c.rhs); break;
    }
    worst = std::max(worst, v);
  }
  for (double xi : x) worst = std::max(worst, -xi);
  return worst;
}

}  // namespace mecsc::lp
