#ifndef MECSC_LP_MODEL_H
#define MECSC_LP_MODEL_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mecsc::lp {

/// Relation of a linear constraint.
enum class Relation { kLessEqual, kEqual, kGreaterEqual };

/// One linear constraint: sum(coef_j * x_j) REL rhs.
struct Constraint {
  std::vector<std::pair<std::size_t, double>> terms;  // (variable id, coef)
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

/// A linear program in the form
///     minimize  c^T x
///     subject to constraints,  x >= 0.
///
/// Variables are non-negative; upper bounds, when needed, are expressed as
/// explicit constraints by the caller. This matches the structure of the
/// paper's LP relaxation (Eq. 3 with constraints 4-6 and 8), where all
/// variables are in [0, 1] and the unit upper bounds are implied by the
/// assignment constraints.
class Model {
 public:
  /// Adds a variable with the given objective coefficient; returns its id.
  std::size_t add_variable(double cost, std::string name = {});

  /// Adds a constraint; duplicate variable ids in `terms` are summed.
  /// Returns the constraint's index.
  std::size_t add_constraint(Constraint c);

  std::size_t num_variables() const noexcept { return costs_.size(); }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }

  double cost(std::size_t var) const { return costs_.at(var); }
  const std::string& variable_name(std::size_t var) const { return var_names_.at(var); }
  const Constraint& constraint(std::size_t i) const { return constraints_.at(i); }

  /// Evaluates the objective at a point.
  double objective_value(const std::vector<double>& x) const;

  /// Returns the largest constraint violation at a point (0 if feasible).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> costs_;
  std::vector<std::string> var_names_;
  std::vector<Constraint> constraints_;
};

}  // namespace mecsc::lp

#endif  // MECSC_LP_MODEL_H
