#ifndef MECSC_LP_SIMPLEX_H
#define MECSC_LP_SIMPLEX_H

#include <cstddef>
#include <vector>

#include "lp/model.h"

namespace mecsc::lp {

/// Termination status of an LP solve.
enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Result of an LP solve. `x` is sized to the model's variable count and
/// only meaningful when `status == kOptimal`.
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t iterations = 0;
};

/// Options for the simplex solver.
struct SimplexOptions {
  /// Pivot tolerance: entries smaller in magnitude are treated as zero.
  double eps = 1e-9;
  /// Hard cap on total pivots across both phases (0 = automatic:
  /// 50 * (rows + cols)).
  std::size_t max_iterations = 0;
  /// After this many consecutive degenerate pivots the solver switches to
  /// Bland's rule, which guarantees termination.
  std::size_t bland_after = 64;
};

/// Dense two-phase primal simplex for `Model` (min c^T x, Ax {<=,=,>=} b,
/// x >= 0).
///
/// Phase 1 minimises the sum of artificial variables to find a basic
/// feasible solution; phase 2 optimises the true objective. Pivoting uses
/// Dantzig's rule with an automatic switch to Bland's rule under
/// degeneracy, so the solver terminates on every input.
///
/// This is the exact path for the paper's per-slot LP relaxation (Eq. 3
/// s.t. 4-6, 8); the scalable flow-based path in `core::FractionalSolver`
/// is validated against it in tests and in the `bench_lp_vs_flow`
/// ablation. Dense tableau storage makes it suitable for models up to a
/// few thousand rows/columns.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model. Never throws on infeasible/unbounded input; those
  /// are reported via `Solution::status`.
  Solution solve(const Model& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace mecsc::lp

#endif  // MECSC_LP_SIMPLEX_H
