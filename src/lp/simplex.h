#ifndef MECSC_LP_SIMPLEX_H
#define MECSC_LP_SIMPLEX_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/model.h"

namespace mecsc::lp {

/// Termination status of an LP solve.
enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Result of an LP solve. `x` is sized to the model's variable count and
/// only meaningful when `status == kOptimal`.
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t iterations = 0;
  /// True when the solve started from a previous basis instead of
  /// phase 1 (see SimplexWorkspace).
  bool warm_started = false;
};

/// Options for the simplex solver.
struct SimplexOptions {
  /// Pivot tolerance: entries smaller in magnitude are treated as zero.
  double eps = 1e-9;
  /// Hard cap on total pivots across both phases (0 = automatic:
  /// 50 * (rows + cols)).
  std::size_t max_iterations = 0;
  /// After this many consecutive degenerate pivots the solver switches to
  /// Bland's rule, which guarantees termination.
  std::size_t bland_after = 64;
};

/// Caller-owned scratch memory for SimplexSolver (DESIGN.md
/// "Performance").
///
/// Holds the flat row-major tableau, the objective row, and the basis —
/// every buffer a repeated solve needs. Passing the same workspace to
/// `SimplexSolver::solve` across solves means steady-state solves of
/// same-shaped models allocate nothing, and enables warm starting: the
/// optimal basis of the previous solve is remembered, and when the next
/// model has the same shape the solver re-pivots onto that basis and
/// skips phase 1 entirely (per-slot caching LPs change costs and demand
/// coefficients smoothly, so the previous basis is usually still feasible
/// — when it is not, the solver falls back to a cold two-phase solve).
///
/// Ownership/thread-safety contract: the workspace is plain mutable
/// state. One workspace per thread; sharing one across concurrent solves
/// is a data race. The solver itself stays const/stateless.
/// Portable snapshot of a workspace's warm-start basis (checkpointing).
/// `valid == false` round-trips a workspace that has no remembered basis.
struct SimplexWarmState {
  std::vector<std::uint64_t> basis;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  bool valid = false;
};

class SimplexWorkspace {
 public:
  SimplexWorkspace() = default;

  /// Forgets the remembered basis, forcing the next solve to run cold.
  void clear_warm_start() { has_warm_ = false; }

  /// Snapshots the remembered basis so a resumed process can warm-start
  /// its first solve exactly like the uninterrupted run would have.
  SimplexWarmState export_warm_state() const {
    SimplexWarmState s;
    s.valid = has_warm_;
    s.rows = warm_m_;
    s.cols = warm_cols_;
    s.basis.assign(warm_basis.begin(), warm_basis.end());
    return s;
  }

  /// Restores a basis snapshot taken by export_warm_state().
  void import_warm_state(const SimplexWarmState& s) {
    has_warm_ = s.valid;
    warm_m_ = static_cast<std::size_t>(s.rows);
    warm_cols_ = static_cast<std::size_t>(s.cols);
    warm_basis.assign(s.basis.begin(), s.basis.end());
  }

 private:
  friend class SimplexSolver;

  // Flat tableau: m rows of (cols + 1) entries, rhs last in each row.
  std::vector<double> a;
  std::vector<double> obj;       // cols+1 reduced costs, -z last
  std::vector<double> cost;      // per-column phase costs
  std::vector<std::size_t> basis;
  std::vector<char> blocked;     // columns barred from entering
  std::vector<char> row_done;    // warm-start crash: rows already assigned

  // Warm-start state: optimal basis of the previous solve, plus the
  // tableau shape it belongs to (a basis is meaningless for a model of a
  // different shape).
  std::vector<std::size_t> warm_basis;
  std::size_t warm_m_ = 0;
  std::size_t warm_cols_ = 0;
  bool has_warm_ = false;
};

/// Dense two-phase primal simplex for `Model` (min c^T x, Ax {<=,=,>=} b,
/// x >= 0).
///
/// Phase 1 minimises the sum of artificial variables to find a basic
/// feasible solution; phase 2 optimises the true objective. Pivoting uses
/// Dantzig's rule with an automatic switch to Bland's rule under
/// degeneracy, so the solver terminates on every input.
///
/// The tableau is one contiguous row-major buffer (`SimplexWorkspace::a`)
/// and the pivot loop runs over raw row pointers, so eliminating a row is
/// a single stride-1 sweep. Callers on a hot path should pass a
/// `SimplexWorkspace` to reuse memory and warm-start from the previous
/// basis; the workspace-less overload allocates a fresh one per call.
///
/// This is the exact path for the paper's per-slot LP relaxation (Eq. 3
/// s.t. 4-6, 8); the scalable flow-based path in `core::FractionalSolver`
/// is validated against it in tests and in the `bench_lp_vs_flow`
/// ablation. Dense tableau storage makes it suitable for models up to a
/// few thousand rows/columns.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model with a private workspace. Never throws on
  /// infeasible/unbounded input; those are reported via
  /// `Solution::status`.
  Solution solve(const Model& model) const;

  /// Solves the model reusing `workspace` buffers and, when the shape
  /// matches the previous solve, warm-starting from its optimal basis.
  Solution solve(const Model& model, SimplexWorkspace& workspace) const;

 private:
  SimplexOptions options_;
};

}  // namespace mecsc::lp

#endif  // MECSC_LP_SIMPLEX_H
