#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mecsc::lp {
namespace {

/// Dense tableau state shared by the two phases.
struct Tableau {
  std::size_t m = 0;           // constraint rows
  std::size_t cols = 0;        // total columns excluding rhs
  std::size_t n_struct = 0;    // structural variables
  std::size_t first_artificial = 0;
  std::vector<std::vector<double>> a;  // m rows, cols+1 entries (rhs last)
  std::vector<double> obj;             // cols+1 entries (reduced costs, -z)
  std::vector<std::size_t> basis;      // basic column per row
  std::vector<bool> blocked;           // columns barred from entering

  double rhs(std::size_t i) const { return a[i][cols]; }
};

bool is_artificial(const Tableau& t, std::size_t col) {
  return col >= t.first_artificial;
}

void pivot(Tableau& t, std::size_t row, std::size_t col, double eps) {
  auto& pr = t.a[row];
  double pv = pr[col];
  for (auto& v : pr) v /= pv;
  pr[col] = 1.0;  // kill round-off on the pivot element
  for (std::size_t i = 0; i < t.m; ++i) {
    if (i == row) continue;
    double f = t.a[i][col];
    if (std::abs(f) < eps) continue;
    auto& ri = t.a[i];
    for (std::size_t j = 0; j <= t.cols; ++j) ri[j] -= f * pr[j];
    ri[col] = 0.0;
  }
  double f = t.obj[col];
  if (std::abs(f) >= eps) {
    for (std::size_t j = 0; j <= t.cols; ++j) t.obj[j] -= f * pr[j];
    t.obj[col] = 0.0;
  }
  t.basis[row] = col;
}

/// Runs simplex iterations on the current objective row until optimal,
/// unbounded, or the iteration budget is exhausted.
SolveStatus iterate(Tableau& t, const SimplexOptions& opt,
                    std::size_t& iterations, std::size_t max_iterations) {
  std::size_t degenerate_streak = 0;
  while (true) {
    if (iterations >= max_iterations) return SolveStatus::kIterationLimit;
    bool bland = degenerate_streak >= opt.bland_after;

    // Entering column: most negative reduced cost (Dantzig), or the
    // lowest-index negative column under Bland's anti-cycling rule.
    std::size_t enter = t.cols;
    double best = -opt.eps;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (t.blocked[j]) continue;
      double rc = t.obj[j];
      if (rc < best) {
        enter = j;
        if (bland) break;
        best = rc;
      }
    }
    if (enter == t.cols) return SolveStatus::kOptimal;

    // Ratio test; ties broken by smallest basis index (Bland-compatible).
    std::size_t leave = t.m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.m; ++i) {
      double aij = t.a[i][enter];
      if (aij <= opt.eps) continue;
      double ratio = t.rhs(i) / aij;
      if (ratio < best_ratio - opt.eps ||
          (ratio < best_ratio + opt.eps &&
           (leave == t.m || t.basis[i] < t.basis[leave]))) {
        best_ratio = std::min(best_ratio, ratio);
        leave = i;
      }
    }
    if (leave == t.m) return SolveStatus::kUnbounded;

    degenerate_streak = best_ratio <= opt.eps ? degenerate_streak + 1 : 0;
    pivot(t, leave, enter, opt.eps);
    ++iterations;
  }
}

/// Rebuilds the objective row (reduced costs) for the given column costs.
void set_objective(Tableau& t, const std::vector<double>& col_cost) {
  for (std::size_t j = 0; j <= t.cols; ++j) {
    t.obj[j] = j < t.cols ? col_cost[j] : 0.0;
  }
  for (std::size_t i = 0; i < t.m; ++i) {
    double cb = col_cost[t.basis[i]];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j <= t.cols; ++j) t.obj[j] -= cb * t.a[i][j];
  }
}

}  // namespace

Solution SimplexSolver::solve(const Model& model) const {
  const std::size_t n = model.num_variables();
  const std::size_t m = model.num_constraints();

  Solution sol;
  sol.x.assign(n, 0.0);
  if (m == 0) {
    // With x >= 0 and no constraints, any negative cost is unbounded.
    for (std::size_t j = 0; j < n; ++j) {
      if (model.cost(j) < -options_.eps) {
        sol.status = SolveStatus::kUnbounded;
        return sol;
      }
    }
    sol.status = SolveStatus::kOptimal;
    return sol;
  }

  // Count slack/surplus and artificial columns. Rows are normalised so
  // rhs >= 0 (flipping the relation when multiplying by -1).
  struct RowInfo {
    double sign = 1.0;
    Relation rel = Relation::kLessEqual;
  };
  std::vector<RowInfo> rows(m);
  std::size_t n_slack = 0;
  std::size_t n_artificial = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto& c = model.constraint(i);
    rows[i].rel = c.relation;
    if (c.rhs < 0.0) {
      rows[i].sign = -1.0;
      if (c.relation == Relation::kLessEqual) rows[i].rel = Relation::kGreaterEqual;
      else if (c.relation == Relation::kGreaterEqual) rows[i].rel = Relation::kLessEqual;
    }
    if (rows[i].rel != Relation::kEqual) ++n_slack;
    if (rows[i].rel != Relation::kLessEqual) ++n_artificial;
  }

  Tableau t;
  t.m = m;
  t.n_struct = n;
  t.first_artificial = n + n_slack;
  t.cols = n + n_slack + n_artificial;
  t.a.assign(m, std::vector<double>(t.cols + 1, 0.0));
  t.obj.assign(t.cols + 1, 0.0);
  t.basis.assign(m, 0);
  t.blocked.assign(t.cols, false);

  std::size_t slack_at = n;
  std::size_t art_at = t.first_artificial;
  for (std::size_t i = 0; i < m; ++i) {
    const auto& c = model.constraint(i);
    auto& row = t.a[i];
    for (const auto& [var, coef] : c.terms) row[var] = rows[i].sign * coef;
    row[t.cols] = rows[i].sign * c.rhs;
    switch (rows[i].rel) {
      case Relation::kLessEqual:
        row[slack_at] = 1.0;
        t.basis[i] = slack_at++;
        break;
      case Relation::kGreaterEqual:
        row[slack_at] = -1.0;
        ++slack_at;
        row[art_at] = 1.0;
        t.basis[i] = art_at++;
        break;
      case Relation::kEqual:
        row[art_at] = 1.0;
        t.basis[i] = art_at++;
        break;
    }
  }

  std::size_t max_iter = options_.max_iterations;
  if (max_iter == 0) max_iter = 50 * (m + t.cols);

  // --- Phase 1: minimise the sum of artificial variables. ---
  if (n_artificial > 0) {
    std::vector<double> phase1_cost(t.cols, 0.0);
    for (std::size_t j = t.first_artificial; j < t.cols; ++j) phase1_cost[j] = 1.0;
    set_objective(t, phase1_cost);
    SolveStatus st = iterate(t, options_, sol.iterations, max_iter);
    if (st == SolveStatus::kIterationLimit) {
      sol.status = st;
      return sol;
    }
    // Phase-1 objective value is -obj[rhs].
    double infeas = -t.obj[t.cols];
    if (infeas > 1e-7) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    // Drive any artificial still basic (at value 0) out of the basis, or
    // accept it as a redundant row when no eligible pivot exists.
    for (std::size_t i = 0; i < m; ++i) {
      if (!is_artificial(t, t.basis[i])) continue;
      std::size_t enter = t.cols;
      for (std::size_t j = 0; j < t.first_artificial; ++j) {
        if (std::abs(t.a[i][j]) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter != t.cols) pivot(t, i, enter, options_.eps);
    }
    for (std::size_t j = t.first_artificial; j < t.cols; ++j) t.blocked[j] = true;
  }

  // --- Phase 2: optimise the true objective. ---
  std::vector<double> cost(t.cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) cost[j] = model.cost(j);
  set_objective(t, cost);
  SolveStatus st = iterate(t, options_, sol.iterations, max_iter);
  if (st != SolveStatus::kOptimal) {
    sol.status = st;
    return sol;
  }

  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) sol.x[t.basis[i]] = std::max(0.0, t.rhs(i));
  }
  sol.objective = model.objective_value(sol.x);
  sol.status = SolveStatus::kOptimal;
  return sol;
}

}  // namespace mecsc::lp
