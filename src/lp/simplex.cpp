#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/span.h"

namespace mecsc::lp {
namespace {

/// Dense tableau views over the workspace's flat buffers.
struct Tableau {
  std::size_t m = 0;           // constraint rows
  std::size_t cols = 0;        // total columns excluding rhs
  std::size_t stride = 0;      // cols + 1 (rhs last in each row)
  std::size_t n_struct = 0;    // structural variables
  std::size_t first_artificial = 0;
  double* a = nullptr;         // m rows of `stride` entries
  double* obj = nullptr;       // stride entries (reduced costs, -z)
  std::size_t* basis = nullptr;  // basic column per row
  char* blocked = nullptr;       // columns barred from entering

  double* row(std::size_t i) { return a + i * stride; }
  const double* row(std::size_t i) const { return a + i * stride; }
  double rhs(std::size_t i) const { return row(i)[cols]; }
};

bool is_artificial(const Tableau& t, std::size_t col) {
  return col >= t.first_artificial;
}

void pivot(Tableau& t, std::size_t row, std::size_t col, double eps) {
  double* pr = t.row(row);
  const double inv = 1.0 / pr[col];
  const std::size_t stride = t.stride;
  for (std::size_t j = 0; j < stride; ++j) pr[j] *= inv;
  pr[col] = 1.0;  // kill round-off on the pivot element
  for (std::size_t i = 0; i < t.m; ++i) {
    if (i == row) continue;
    double* ri = t.row(i);
    double f = ri[col];
    if (std::abs(f) < eps) continue;
    for (std::size_t j = 0; j < stride; ++j) ri[j] -= f * pr[j];
    ri[col] = 0.0;
  }
  double f = t.obj[col];
  if (std::abs(f) >= eps) {
    for (std::size_t j = 0; j < stride; ++j) t.obj[j] -= f * pr[j];
    t.obj[col] = 0.0;
  }
  t.basis[row] = col;
}

/// Runs simplex iterations on the current objective row until optimal,
/// unbounded, or the iteration budget is exhausted.
SolveStatus iterate(Tableau& t, const SimplexOptions& opt,
                    std::size_t& iterations, std::size_t max_iterations) {
  std::size_t degenerate_streak = 0;
  while (true) {
    if (iterations >= max_iterations) return SolveStatus::kIterationLimit;
    bool bland = degenerate_streak >= opt.bland_after;

    // Entering column: most negative reduced cost (Dantzig), or the
    // lowest-index negative column under Bland's anti-cycling rule.
    std::size_t enter = t.cols;
    double best = -opt.eps;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (t.blocked[j]) continue;
      double rc = t.obj[j];
      if (rc < best) {
        enter = j;
        if (bland) break;
        best = rc;
      }
    }
    if (enter == t.cols) return SolveStatus::kOptimal;

    // Ratio test; ties broken by smallest basis index (Bland-compatible).
    std::size_t leave = t.m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.m; ++i) {
      double aij = t.row(i)[enter];
      if (aij <= opt.eps) continue;
      double ratio = t.rhs(i) / aij;
      if (ratio < best_ratio - opt.eps ||
          (ratio < best_ratio + opt.eps &&
           (leave == t.m || t.basis[i] < t.basis[leave]))) {
        best_ratio = std::min(best_ratio, ratio);
        leave = i;
      }
    }
    if (leave == t.m) return SolveStatus::kUnbounded;

    degenerate_streak = best_ratio <= opt.eps ? degenerate_streak + 1 : 0;
    pivot(t, leave, enter, opt.eps);
    ++iterations;
  }
}

/// Rebuilds the objective row (reduced costs) for the given column costs.
void set_objective(Tableau& t, const double* col_cost) {
  for (std::size_t j = 0; j < t.cols; ++j) t.obj[j] = col_cost[j];
  t.obj[t.cols] = 0.0;
  for (std::size_t i = 0; i < t.m; ++i) {
    double cb = col_cost[t.basis[i]];
    if (cb == 0.0) continue;
    const double* ri = t.row(i);
    for (std::size_t j = 0; j <= t.cols; ++j) t.obj[j] -= cb * ri[j];
  }
}

}  // namespace

Solution SimplexSolver::solve(const Model& model) const {
  SimplexWorkspace workspace;
  return solve(model, workspace);
}

Solution SimplexSolver::solve(const Model& model,
                              SimplexWorkspace& ws) const {
  MECSC_SPAN("lp.solve");
  const std::size_t n = model.num_variables();
  const std::size_t m = model.num_constraints();

  Solution sol;
  // Solve-outcome telemetry, recorded on every exit path (several early
  // returns below). The derived warm-hit-rate gauge keeps the dump
  // self-describing without a second pass over the counters.
  struct SolveTelemetry {
    const Solution* sol;
    ~SolveTelemetry() {
      if (!obs::enabled()) return;
      obs::Registry& reg = obs::current();
      reg.counter("simplex.solves").inc();
      reg.counter("simplex.iterations")
          .add(static_cast<double>(sol->iterations));
      reg.counter(sol->warm_started ? "simplex.warm_start.hits"
                                    : "simplex.warm_start.misses")
          .inc();
      double solves = reg.counter("simplex.solves").value();
      double hits = reg.counter("simplex.warm_start.hits").value();
      reg.gauge("simplex.warm_hit_rate").set(hits / solves);
    }
  } solve_telemetry{&sol};
  sol.x.assign(n, 0.0);
  if (m == 0) {
    // With x >= 0 and no constraints, any negative cost is unbounded.
    for (std::size_t j = 0; j < n; ++j) {
      if (model.cost(j) < -options_.eps) {
        sol.status = SolveStatus::kUnbounded;
        return sol;
      }
    }
    sol.status = SolveStatus::kOptimal;
    return sol;
  }

  // Count slack/surplus and artificial columns. Rows are normalised so
  // rhs >= 0 (flipping the relation when multiplying by -1).
  struct RowInfo {
    double sign = 1.0;
    Relation rel = Relation::kLessEqual;
  };
  std::vector<RowInfo> rows(m);
  std::size_t n_slack = 0;
  std::size_t n_artificial = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto& c = model.constraint(i);
    rows[i].rel = c.relation;
    if (c.rhs < 0.0) {
      rows[i].sign = -1.0;
      if (c.relation == Relation::kLessEqual) rows[i].rel = Relation::kGreaterEqual;
      else if (c.relation == Relation::kGreaterEqual) rows[i].rel = Relation::kLessEqual;
    }
    if (rows[i].rel != Relation::kEqual) ++n_slack;
    if (rows[i].rel != Relation::kLessEqual) ++n_artificial;
  }

  Tableau t;
  t.m = m;
  t.n_struct = n;
  t.first_artificial = n + n_slack;
  t.cols = n + n_slack + n_artificial;
  t.stride = t.cols + 1;
  ws.a.resize(m * t.stride);
  ws.obj.resize(t.stride);
  ws.cost.resize(t.cols);
  ws.basis.resize(m);
  ws.blocked.resize(t.cols);
  t.a = ws.a.data();
  t.obj = ws.obj.data();
  t.basis = ws.basis.data();
  t.blocked = ws.blocked.data();

  // (Re)writes tableau rows and the default slack/artificial basis —
  // also how a failed warm-start attempt rewinds to a cold start.
  auto fill_tableau = [&]() {
    std::fill(ws.a.begin(), ws.a.end(), 0.0);
    std::fill(ws.blocked.begin(), ws.blocked.end(), 0);
    std::size_t slack_at = n;
    std::size_t art_at = t.first_artificial;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& c = model.constraint(i);
      double* row = t.row(i);
      for (const auto& [var, coef] : c.terms) row[var] = rows[i].sign * coef;
      row[t.cols] = rows[i].sign * c.rhs;
      switch (rows[i].rel) {
        case Relation::kLessEqual:
          row[slack_at] = 1.0;
          t.basis[i] = slack_at++;
          break;
        case Relation::kGreaterEqual:
          row[slack_at] = -1.0;
          ++slack_at;
          row[art_at] = 1.0;
          t.basis[i] = art_at++;
          break;
        case Relation::kEqual:
          row[art_at] = 1.0;
          t.basis[i] = art_at++;
          break;
      }
    }
  };
  fill_tableau();

  std::size_t max_iter = options_.max_iterations;
  if (max_iter == 0) max_iter = 50 * (m + t.cols);

  // --- Warm start: re-pivot onto the previous solve's basis. ---
  // The basis is a column SET — a column need not land in the row it
  // occupied last time — so this is Gaussian elimination with partial
  // pivoting: each target column enters on the not-yet-assigned row with
  // the largest pivot element. Valid whenever the basis is
  // non-artificial, every pivot is well-conditioned, and the resulting
  // vertex is feasible (rhs >= 0); any of those failing falls back to a
  // cold phase-1 start.
  bool warm = false;
  if (ws.has_warm_ && ws.warm_m_ == m && ws.warm_cols_ == t.cols) {
    warm = true;
    for (std::size_t i = 0; i < m && warm; ++i) {
      if (is_artificial(t, ws.warm_basis[i])) warm = false;
    }
    ws.row_done.assign(m, 0);
    for (std::size_t i = 0; i < m && warm; ++i) {
      std::size_t target = ws.warm_basis[i];
      std::size_t best_r = m;
      double best_abs = 1e-7;
      for (std::size_t r = 0; r < m; ++r) {
        if (ws.row_done[r]) continue;
        double v = std::abs(t.row(r)[target]);
        if (v > best_abs) {
          best_abs = v;
          best_r = r;
        }
      }
      if (best_r == m) {
        warm = false;
        break;
      }
      if (t.basis[best_r] != target) pivot(t, best_r, target, options_.eps);
      ws.row_done[best_r] = 1;
    }
    for (std::size_t i = 0; i < m && warm; ++i) {
      if (t.rhs(i) < -1e-9) warm = false;
    }
    if (warm) {
      // Basic feasible vertex reached without phase 1; clamp the tiny
      // negative rhs round-off the feasibility check tolerates.
      for (std::size_t i = 0; i < m; ++i) {
        double& b = t.row(i)[t.cols];
        if (b < 0.0) b = 0.0;
      }
      for (std::size_t j = t.first_artificial; j < t.cols; ++j) t.blocked[j] = 1;
    } else {
      MECSC_COUNT("simplex.warm_start.fallbacks", 1.0);
      fill_tableau();
    }
  }
  sol.warm_started = warm;

  // --- Phase 1: minimise the sum of artificial variables. ---
  if (!warm && n_artificial > 0) {
    MECSC_COUNT("simplex.phase1_runs", 1.0);
    std::fill(ws.cost.begin(), ws.cost.end(), 0.0);
    for (std::size_t j = t.first_artificial; j < t.cols; ++j) ws.cost[j] = 1.0;
    set_objective(t, ws.cost.data());
    SolveStatus st = iterate(t, options_, sol.iterations, max_iter);
    if (st == SolveStatus::kIterationLimit) {
      sol.status = st;
      return sol;
    }
    // Phase-1 objective value is -obj[rhs].
    double infeas = -t.obj[t.cols];
    if (infeas > 1e-7) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    // Drive any artificial still basic (at value 0) out of the basis, or
    // accept it as a redundant row when no eligible pivot exists.
    for (std::size_t i = 0; i < m; ++i) {
      if (!is_artificial(t, t.basis[i])) continue;
      std::size_t enter = t.cols;
      for (std::size_t j = 0; j < t.first_artificial; ++j) {
        if (std::abs(t.row(i)[j]) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter != t.cols) pivot(t, i, enter, options_.eps);
    }
    for (std::size_t j = t.first_artificial; j < t.cols; ++j) t.blocked[j] = 1;
  }

  // --- Phase 2: optimise the true objective. ---
  std::fill(ws.cost.begin(), ws.cost.end(), 0.0);
  for (std::size_t j = 0; j < n; ++j) ws.cost[j] = model.cost(j);
  set_objective(t, ws.cost.data());
  SolveStatus st = iterate(t, options_, sol.iterations, max_iter);
  if (st != SolveStatus::kOptimal) {
    ws.has_warm_ = false;
    sol.status = st;
    return sol;
  }

  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) sol.x[t.basis[i]] = std::max(0.0, t.rhs(i));
  }
  sol.objective = model.objective_value(sol.x);
  sol.status = SolveStatus::kOptimal;

  // Remember the optimal basis for the next same-shaped solve.
  ws.warm_basis.assign(ws.basis.begin(), ws.basis.end());
  ws.warm_m_ = m;
  ws.warm_cols_ = t.cols;
  ws.has_warm_ = true;
  return sol;
}

}  // namespace mecsc::lp
