// mecsc_cli — run a configurable service-caching experiment from the
// command line. The "embed the library in your tooling" example: every
// knob of the scenario and the algorithm roster is a flag, output is a
// table or CSV.
//
//   mecsc_cli [--stations N] [--requests N] [--slots N] [--seed S]
//             [--net gtitm|as1755] [--bursty] [--algos list]
//             [--gan-steps N] [--csv] [--help]
//
//   --algos   comma-separated subset of: ol_gd, ol_reg, ol_gan, greedy,
//             pri (default: ol_gd,greedy,pri; ol_gan/ol_reg imply
//             --bursty makes sense)
//
// Examples:
//   mecsc_cli --stations 60 --slots 50
//   mecsc_cli --bursty --algos ol_gan,ol_reg --gan-steps 300 --csv
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "common/env_catalog.h"
#include "common/table.h"
#include "predict/gan_predictor.h"
#include "sim/scenario.h"

using namespace mecsc;

namespace {

struct CliOptions {
  sim::ScenarioParams scenario;
  std::vector<std::string> algos{"ol_gd", "greedy", "pri"};
  std::size_t gan_steps = 300;
  bool csv = false;
};

void print_usage(std::ostream& out) {
  out << "usage: mecsc_cli [--stations N] [--requests N] [--slots N]\n"
      << "                 [--seed S] [--net gtitm|as1755] [--bursty]\n"
      << "                 [--algos ol_gd,ol_reg,ol_gan,greedy,pri]\n"
      << "                 [--gan-steps N] [--csv] [--help]\n";
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "mecsc_cli: " << message << "\n";
  print_usage(std::cerr);
  std::exit(2);
}

// --help: flags plus the environment-variable catalogue. The table comes
// from common::env_catalog() — the same source of truth the README table
// is checked against in CI — so this help text cannot drift from the
// code.
[[noreturn]] void print_help() {
  print_usage(std::cout);
  std::cout << "\nEnvironment variables (shared across the bench/example "
               "binaries):\n"
            << common::env_catalog_table();
  std::exit(0);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  opt.scenario.num_stations = 60;
  opt.scenario.horizon = 50;
  opt.scenario.workload.num_requests = 60;
  opt.scenario.seed = 1;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  auto parse_count = [&](const std::string& v, const char* what) -> std::size_t {
    char* end = nullptr;
    unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || n == 0) {
      usage_error(std::string("bad value for ") + what + ": " + v);
    }
    return static_cast<std::size_t>(n);
  };

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      print_help();
    } else if (a == "--stations") {
      opt.scenario.num_stations = parse_count(need_value(i), "--stations");
    } else if (a == "--requests") {
      opt.scenario.workload.num_requests = parse_count(need_value(i), "--requests");
    } else if (a == "--slots") {
      opt.scenario.horizon = parse_count(need_value(i), "--slots");
    } else if (a == "--seed") {
      opt.scenario.seed = parse_count(need_value(i), "--seed");
    } else if (a == "--gan-steps") {
      opt.gan_steps = parse_count(need_value(i), "--gan-steps");
    } else if (a == "--net") {
      std::string v = need_value(i);
      if (v == "gtitm") {
        opt.scenario.net = sim::ScenarioParams::NetKind::kGtItm;
      } else if (v == "as1755") {
        opt.scenario.net = sim::ScenarioParams::NetKind::kAs1755;
      } else {
        usage_error("unknown --net " + v);
      }
    } else if (a == "--bursty") {
      opt.scenario.bursty = true;
    } else if (a == "--csv") {
      opt.csv = true;
    } else if (a == "--algos") {
      opt.algos = split_csv(need_value(i));
      if (opt.algos.empty()) usage_error("--algos list is empty");
    } else {
      usage_error("unknown flag " + a);
    }
  }
  return opt;
}

std::unique_ptr<algorithms::CachingAlgorithm> make_algorithm(
    const std::string& name, sim::Scenario& s, const CliOptions& opt) {
  algorithms::OlOptions ol;
  ol.aggregate = s.aggregate_mode();  // one env resolution, at scenario build
  if (name == "ol_gd") {
    return algorithms::make_ol_gd(s.problem(), s.demands(), ol,
                                  s.algorithm_seed(0));
  }
  if (name == "ol_reg") {
    return algorithms::make_ol_reg(s.problem(), 5, ol, s.algorithm_seed(1));
  }
  if (name == "ol_gan") {
    predict::GanPredictorOptions gopt;
    gopt.train_steps = opt.gan_steps;
    auto predictor = std::make_unique<predict::GanDemandPredictor>(
        s.workload().requests, s.trace(), gopt, s.algorithm_seed(10));
    return algorithms::make_ol_with_predictor("OL_GAN", s.problem(),
                                              std::move(predictor), ol,
                                              s.algorithm_seed(2));
  }
  if (name == "greedy") {
    return algorithms::make_greedy_gd(s.problem(), s.demands(),
                                      s.historical_delay_estimates());
  }
  if (name == "pri") {
    return algorithms::make_pri_gd(s.problem(), s.demands(),
                                   s.historical_delay_estimates());
  }
  usage_error("unknown algorithm " + name);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt = parse(argc, argv);
  sim::Scenario scenario(opt.scenario);

  if (!opt.csv) {
    std::cerr << "scenario: " << scenario.topology().num_stations()
              << " stations, " << scenario.problem().num_requests()
              << " requests, " << scenario.simulator().horizon() << " slots, "
              << (opt.scenario.bursty ? "bursty" : "given") << " demands, seed "
              << opt.scenario.seed << "\n";
  }

  common::Table table({"algorithm", "mean delay (ms)", "steady-state (ms)",
                       "decision time (ms/slot)", "capacity violations (MHz)"});
  for (const auto& name : opt.algos) {
    auto algo = make_algorithm(name, scenario, opt);
    sim::RunResult r = scenario.simulator().run(*algo);
    table.add_row({r.algorithm, common::fmt(r.mean_delay_ms(), 2),
                   common::fmt(r.tail_mean_delay_ms(scenario.simulator().horizon() / 2), 2),
                   common::fmt(r.mean_decision_time_ms(), 2),
                   common::fmt(r.total_capacity_violation_mhz(), 1)});
  }
  std::cout << (opt.csv ? table.to_csv() : table.to_string());
  return 0;
}
