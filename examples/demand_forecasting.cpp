// Demand forecasting with the Info-RNN-GAN, standalone.
//
// Uses the gan/ and predict/ layers directly — no network, no simulator:
// generate a synthetic two-hotspot demand history (diurnal + bursts),
// keep a small sample of it, train the GAN, and compare one-step-ahead
// forecasts against ARMA and last-value on held-out slots.
//
// Run: ./build/examples/demand_forecasting
#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "gan/info_rnn_gan.h"
#include "predict/predictor.h"
#include "workload/demand_model.h"

using namespace mecsc;

int main() {
  const std::size_t kHistory = 96;  // slots of (sampled) history
  const std::size_t kTest = 48;     // held-out slots
  const std::size_t kClusters = 2;
  common::Rng rng(11);

  // Two hotspots with different levels and phases, bursty on top.
  std::vector<std::vector<double>> truth(kClusters);
  for (std::size_t c = 0; c < kClusters; ++c) {
    workload::DiurnalDemand diurnal(10.0 + 6.0 * static_cast<double>(c), 24.0,
                                    3.14 * static_cast<double>(c), 0.5);
    workload::OnOffBurstDemand burst(0.10, 0.35, 4.0, 1.6, 25.0);
    for (std::size_t t = 0; t < kHistory + kTest; ++t) {
      truth[c].push_back(5.0 + diurnal.sample(t, rng) + burst.sample(t, rng));
    }
  }

  // Normalize by a global scale, train on the history prefix.
  double scale = 0.0;
  for (const auto& s : truth) {
    for (double v : s) scale = std::max(scale, v);
  }
  scale *= 1.2;
  std::vector<std::vector<double>> train(kClusters);
  for (std::size_t c = 0; c < kClusters; ++c) {
    for (std::size_t t = 0; t < kHistory; ++t) train[c].push_back(truth[c][t] / scale);
  }

  gan::InfoRnnGanConfig cfg;
  cfg.num_codes = kClusters;
  cfg.hidden = 16;
  cfg.seq_len = 24;
  gan::InfoRnnGan model(cfg, 5);
  std::cout << "Training Info-RNN-GAN ("
            << model.generator_parameter_count() << " G params, "
            << model.discriminator_parameter_count() << " D+Q params) ...\n";
  gan::GanStepStats last = model.train(train, 500);
  std::cout << "final losses: D " << common::fmt(last.d_loss, 3) << ", G(adv) "
            << common::fmt(last.g_adv_loss, 3) << ", info "
            << common::fmt(last.info_loss, 3) << "\n\n";

  // Walk the held-out slots: every predictor sees the true history up to
  // t-1 and forecasts slot t.
  common::Table table({"cluster", "GAN MAE", "ARMA(5) MAE", "last-value MAE"});
  for (std::size_t c = 0; c < kClusters; ++c) {
    predict::ArmaPredictor arma(5, {truth[c][0]});
    predict::LastValuePredictor last_value({truth[c][0]});
    for (std::size_t t = 0; t < kHistory; ++t) {
      arma.observe(t, {truth[c][t]});
      last_value.observe(t, {truth[c][t]});
    }
    std::vector<double> history(train[c]);
    common::RunningStats gan_err, arma_err, last_err;
    for (std::size_t t = kHistory; t < kHistory + kTest; ++t) {
      double actual = truth[c][t];
      gan_err.add(std::abs(model.predict_next(history, c) * scale - actual));
      arma_err.add(std::abs(arma.predict(t)[0] - actual));
      last_err.add(std::abs(last_value.predict(t)[0] - actual));
      history.push_back(actual / scale);
      arma.observe(t, {actual});
      last_value.observe(t, {actual});
    }
    table.add_row_values({static_cast<double>(c), gan_err.mean(),
                          arma_err.mean(), last_err.mean()},
                         2);
  }
  std::cout << "One-step-ahead forecasting error over " << kTest
            << " held-out slots (data units):\n"
            << table.to_string();
  return 0;
}
