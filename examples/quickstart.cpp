// Quickstart: the smallest end-to-end use of the mecsc library.
//
// Builds a 5G MEC scenario (synthetic GT-ITM-like topology, 40 stations,
// 50 requests with given demands), runs the paper's online-learning
// caching algorithm OL_GD against the Pri_GD baseline, and prints the
// average per-request delay of both.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "common/table.h"
#include "sim/scenario.h"

int main() {
  using namespace mecsc;

  // 1. Describe the experiment. Scenario materialises the topology, the
  //    workload, the per-slot demands/delays and a simulator, all from
  //    one seed.
  sim::ScenarioParams params;
  params.num_stations = 40;
  params.horizon = 60;
  params.workload.num_requests = 50;
  params.seed = 21;
  sim::Scenario scenario(params);

  std::cout << "Network: " << scenario.topology().num_stations()
            << " stations, " << scenario.topology().num_links() << " links; "
            << scenario.problem().num_requests() << " requests, "
            << scenario.problem().num_services() << " services\n";

  // 2. Instantiate algorithms. OL_GD learns per-station delays online
  //    (multi-armed bandits over base stations, Algorithm 1 of the
  //    paper); Pri_GD plans from stale historical measurements.
  algorithms::OlOptions opt;  // defaults: γ = 0.25, ε_t = 0.5/t decay
  auto ol_gd = algorithms::make_ol_gd(scenario.problem(), scenario.demands(),
                                      opt, scenario.algorithm_seed(0));
  auto pri_gd = algorithms::make_pri_gd(scenario.problem(), scenario.demands(),
                                        scenario.historical_delay_estimates());

  // 3. Run both on identical demand/delay sample paths and compare.
  sim::RunResult r_ol = scenario.simulator().run(*ol_gd);
  sim::RunResult r_pri = scenario.simulator().run(*pri_gd);

  common::Table table({"algorithm", "mean delay (ms)", "steady-state delay (ms)",
                       "decision time (ms/slot)"});
  for (const auto* r : {&r_ol, &r_pri}) {
    table.add_row({r->algorithm, common::fmt(r->mean_delay_ms(), 2),
                   common::fmt(r->tail_mean_delay_ms(20), 2),
                   common::fmt(r->mean_decision_time_ms(), 2)});
  }
  std::cout << table.to_string();

  double saving = 100.0 * (r_pri.tail_mean_delay_ms(20) - r_ol.tail_mean_delay_ms(20)) /
                  r_pri.tail_mean_delay_ms(20);
  std::cout << "\nOL_GD serves requests " << common::fmt(saving, 1)
            << "% faster than Pri_GD once its delay estimates converge.\n";
  return 0;
}
