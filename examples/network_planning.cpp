// Network planning with the low-level API.
//
// An operator wants to know how many femtocells a macro cell needs
// before the average service delay stops improving. Instead of the
// Scenario convenience wrapper, this example builds the topology, the
// workload and the problem instance by hand — the API a downstream user
// would embed in their own planning tool.
//
// Run: ./build/examples/network_planning
#include <iostream>
#include <memory>

#include "algorithms/ol_gd.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/problem.h"
#include "net/delay_process.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "workload/trace.h"

using namespace mecsc;

namespace {

/// One macro cell at the origin with `n_femto` femtocells scattered in
/// its coverage disk, star-wired to the macro.
net::Topology build_cell(std::size_t n_femto, common::Rng& rng) {
  std::vector<net::BaseStation> stations;
  net::BaseStation macro;
  macro.id = 0;
  macro.tier = net::Tier::kMacro;
  net::TierProfile mp = net::tier_profile(net::Tier::kMacro);
  macro.radius_m = mp.radius_m;
  macro.capacity_mhz = rng.uniform(mp.capacity_lo_mhz, mp.capacity_hi_mhz);
  macro.bandwidth_mbps = rng.uniform(mp.bandwidth_lo_mbps, mp.bandwidth_hi_mbps);
  macro.transmit_power_w = mp.transmit_power_w;
  macro.mean_unit_delay_ms = rng.uniform(mp.delay_lo_ms, mp.delay_hi_ms);
  stations.push_back(macro);

  net::TierProfile fp = net::tier_profile(net::Tier::kFemto);
  for (std::size_t f = 0; f < n_femto; ++f) {
    net::BaseStation femto;
    femto.id = 1 + f;
    femto.tier = net::Tier::kFemto;
    femto.radius_m = fp.radius_m;
    femto.capacity_mhz = rng.uniform(fp.capacity_lo_mhz, fp.capacity_hi_mhz);
    femto.bandwidth_mbps = rng.uniform(fp.bandwidth_lo_mbps, fp.bandwidth_hi_mbps);
    femto.transmit_power_w = fp.transmit_power_w;
    femto.mean_unit_delay_ms = rng.uniform(fp.delay_lo_ms, fp.delay_hi_ms);
    double angle = rng.uniform(0.0, 6.28318);
    double r = 100.0 * std::sqrt(rng.uniform());
    femto.x_m = r * std::cos(angle);
    femto.y_m = r * std::sin(angle);
    stations.push_back(femto);
  }
  net::Topology topo(std::move(stations));
  for (std::size_t f = 1; f <= n_femto; ++f) {
    topo.add_link(net::Link{0, f, rng.uniform(0.5, 2.0), 500.0, false});
  }
  return topo;
}

}  // namespace

int main() {
  const std::size_t kRequests = 40;
  const std::size_t kSlots = 50;

  common::Table table({"femtocells", "mean delay (ms)", "steady-state (ms)"});
  for (std::size_t n_femto : {4, 8, 16, 32}) {
    common::Rng rng(100 + n_femto);
    net::Topology topo = build_cell(n_femto, rng);

    workload::WorkloadParams wp;
    wp.num_requests = kRequests;
    wp.num_services = 6;
    workload::Workload w = workload::make_workload(topo, wp, rng, false);

    core::ProblemOptions po;
    // One macro + a handful of femtos is a small cell: scale the per-unit
    // resource demand down so even the 4-femto point is feasible.
    po.c_unit_mhz = 15.0;
    core::CachingProblem problem(&topo, w.services, w.requests, po, rng);

    workload::DemandMatrix demands =
        workload::realize_demands(w.requests, w.processes, kSlots, rng);

    net::NetworkDelayModel delays =
        net::make_delay_model(topo, net::DelayModelKind::kUniform, rng);
    std::vector<std::vector<double>> realized;
    for (std::size_t t = 0; t < kSlots; ++t) realized.push_back(delays.realize(rng));

    sim::Simulator simulator(problem, &demands, std::move(realized));
    algorithms::OlOptions opt;
    auto algo = algorithms::make_ol_gd(problem, demands, opt, 9);
    sim::RunResult r = simulator.run(*algo);
    table.add_row_values({static_cast<double>(n_femto), r.mean_delay_ms(),
                          r.tail_mean_delay_ms(20)},
                         2);
  }
  std::cout << "Average request delay as femtocells are added to one macro "
               "cell (OL_GD policy):\n"
            << table.to_string()
            << "\nReturns diminish once femto capacity covers the demand — "
               "the knee is where provisioning should stop.\n";
  return 0;
}
