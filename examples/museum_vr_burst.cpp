// Museum VR burst — the paper's §III.B motivating scenario.
//
// "VR services of a museum may experience a bursty amount of inference
// data if many people use its VR services suddenly."
//
// We build a bursty workload whose hotspot clusters occasionally erupt
// (cluster-level events boost every user in the hotspot), train the
// Info-RNN-GAN demand predictor on a *small sample* of historical
// observations, and compare OL_GAN against the ARMA-based OL_Reg on the
// same sample paths — including how each behaves in the slots around a
// demand burst.
//
// Run: ./build/examples/museum_vr_burst
#include <algorithm>
#include <iostream>
#include <memory>

#include "algorithms/ol_gd.h"
#include "common/table.h"
#include "predict/gan_predictor.h"
#include "sim/scenario.h"

int main() {
  using namespace mecsc;

  sim::ScenarioParams params;
  params.num_stations = 60;
  params.horizon = 60;
  params.bursty = true;
  params.workload.num_requests = 60;
  params.workload.num_clusters = 6;
  // Make events (museum crowds) frequent and strong.
  params.workload.event_prob = 0.10;
  params.workload.event_duration = 4;
  params.workload.event_boost = 3.0;
  // Small-sample regime: predictors see only 25% of the history rows.
  params.trace_sample_fraction = 0.25;
  params.history_horizon = 96;
  params.seed = 7;
  sim::Scenario scenario(params);

  std::cout << "Historical trace: " << scenario.trace().rows().size()
            << " sampled observations over " << scenario.trace().horizon()
            << " past slots, " << scenario.trace().num_clusters()
            << " hotspots\n";

  // Train the Info-RNN-GAN on the small sample (one-hot hotspot id is
  // the InfoGAN latent code).
  predict::GanPredictorOptions gan_opt;
  gan_opt.train_steps = 150;
  auto gan = std::make_unique<predict::GanDemandPredictor>(
      scenario.workload().requests, scenario.trace(), gan_opt,
      scenario.algorithm_seed(10));
  std::cout << "GAN trained: " << gan->model().generator_parameter_count()
            << " generator parameters, "
            << gan->model().discriminator_parameter_count()
            << " discriminator parameters\n\n";

  algorithms::OlOptions opt;
  auto ol_gan = algorithms::make_ol_with_predictor(
      "OL_GAN", scenario.problem(), std::move(gan), opt,
      scenario.algorithm_seed(0));
  auto ol_reg = algorithms::make_ol_reg(scenario.problem(), 5, opt,
                                        scenario.algorithm_seed(1));

  sim::RunResult r_gan = scenario.simulator().run(*ol_gan);
  sim::RunResult r_reg = scenario.simulator().run(*ol_reg);

  // Find the burstiest slot (highest total demand) and show the window
  // around it.
  std::size_t peak = 0;
  double peak_demand = 0.0;
  std::vector<double> total_demand(scenario.demands().horizon(), 0.0);
  for (std::size_t t = 0; t < scenario.demands().horizon(); ++t) {
    for (std::size_t l = 0; l < scenario.demands().num_requests(); ++l) {
      total_demand[t] += scenario.demands().at(l, t);
    }
    if (total_demand[t] > peak_demand) {
      peak_demand = total_demand[t];
      peak = t;
    }
  }

  common::Table window({"slot", "total demand", "OL_GAN delay (ms)",
                        "OL_Reg delay (ms)"});
  std::size_t lo = peak >= 3 ? peak - 3 : 0;
  std::size_t hi = std::min(peak + 4, r_gan.slots.size());
  for (std::size_t t = lo; t < hi; ++t) {
    window.add_row_values({static_cast<double>(t), total_demand[t],
                           r_gan.slots[t].avg_delay_ms,
                           r_reg.slots[t].avg_delay_ms},
                          1);
  }
  std::cout << "Window around the biggest burst (slot " << peak << "):\n"
            << window.to_string();

  common::Table summary({"algorithm", "mean delay (ms)",
                         "decision time (ms/slot)"});
  summary.add_row({"OL_GAN", common::fmt(r_gan.mean_delay_ms(), 2),
                   common::fmt(r_gan.mean_decision_time_ms(), 2)});
  summary.add_row({"OL_Reg", common::fmt(r_reg.mean_delay_ms(), 2),
                   common::fmt(r_reg.mean_decision_time_ms(), 2)});
  std::cout << "\n" << summary.to_string();
  std::cout << "\nThe GAN-guided predictor anticipates hotspot-wide bursts "
               "that the per-request ARMA smoother averages away.\n";
  return 0;
}
